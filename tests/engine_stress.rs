//! Snapshot-consistency stress: reader threads hammer point queries
//! against [`StreamEngine`] snapshots while a writer applies a seeded
//! batch schedule. Every answer a reader computes must be internally
//! consistent with exactly one published epoch — readers never observe a
//! half-applied batch — and the writer's trajectory must pass the shared
//! from-scratch differential gate at the end.

use bigraph::{gen, Side};
use receipt::engine::{EngineOptions, EngineSnapshot, StreamEngine};
use receipt::Config;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Everything a snapshot must satisfy regardless of which epoch it is:
/// each butterfly contributes 2 to each side's vertex counts and 4 to the
/// edge counts, tips are indexed like the graph, and the densest vertex
/// attains θ_max. A torn read (counts from one epoch, tips from another)
/// breaks at least one of these with overwhelming probability.
fn assert_internally_consistent(snap: &EngineSnapshot) {
    let total = snap.total_butterflies();
    assert_eq!(
        snap.counts_side(Side::U).iter().sum::<u64>(),
        2 * total,
        "epoch {}: U counts out of step with the total",
        snap.epoch()
    );
    assert_eq!(
        snap.counts_side(Side::V).iter().sum::<u64>(),
        2 * total,
        "epoch {}: V counts out of step with the total",
        snap.epoch()
    );
    assert_eq!(
        snap.edge_counts().iter().sum::<u64>(),
        4 * total,
        "epoch {}: edge counts out of step with the total",
        snap.epoch()
    );
    for side in [Side::U, Side::V] {
        assert_eq!(snap.tip_side(side).len(), snap.num_side(side));
        assert_eq!(snap.counts_side(side).len(), snap.num_side(side));
        let theta = snap.theta_max(side);
        if let Some(best) = snap.top_k_densest(side, 1).first() {
            assert_eq!(
                best.tip,
                theta,
                "epoch {}: top-1 misses θ_max",
                snap.epoch()
            );
            assert_eq!(snap.tip(side, best.id), Some(best.tip));
            assert_eq!(
                snap.vertex_butterflies(side, best.id),
                Some(best.butterflies)
            );
        }
    }
    assert_eq!(snap.edge_counts().len(), snap.graph().num_edges());
}

#[test]
fn concurrent_readers_always_see_one_published_epoch() {
    let g = gen::zipf(120, 80, 600, 0.5, 0.9, 71);
    let schedule = bigraph::dynamic::seeded_schedule(&g, 8, 60, 73);
    let engine = StreamEngine::new(
        g,
        EngineOptions {
            config: Config::default().with_partitions(6),
            dirty_threshold: 0.15,
            compact_threshold: 0.2,
            verify: false,
        },
    );
    let readers = 4;
    let stop = AtomicBool::new(false);

    // The writer records (epoch → (checksum_u, checksum_v, total)) as it
    // publishes; readers record the same triple for every epoch they
    // observe. Cross-checking afterwards proves each observed snapshot
    // was a *published* state, not a partially updated one.
    let mut published: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    let epoch0 = engine.snapshot();
    assert_internally_consistent(&epoch0);
    published.insert(
        0,
        (
            epoch0.tip_checksum(Side::U),
            epoch0.tip_checksum(Side::V),
            epoch0.total_butterflies(),
        ),
    );

    let observed: Vec<BTreeMap<u64, (u64, u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let engine = &engine;
                let stop = &stop;
                scope.spawn(move || {
                    let mut seen: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = engine.snapshot();
                        assert!(
                            snap.epoch() >= last_epoch,
                            "epochs went backwards: {} after {last_epoch}",
                            snap.epoch()
                        );
                        last_epoch = snap.epoch();
                        assert_internally_consistent(&snap);
                        seen.insert(
                            snap.epoch(),
                            (
                                snap.tip_checksum(Side::U),
                                snap.tip_checksum(Side::V),
                                snap.total_butterflies(),
                            ),
                        );
                    }
                    seen
                })
            })
            .collect();

        for (i, batch) in schedule.iter().enumerate() {
            let outcome = engine
                .apply_batch(batch)
                .unwrap_or_else(|e| panic!("batch {i}: {e}"));
            let snap = &outcome.snapshot;
            published.insert(
                outcome.epoch,
                (
                    snap.tip_checksum(Side::U),
                    snap.tip_checksum(Side::V),
                    snap.total_butterflies(),
                ),
            );
        }
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .collect()
    });

    let mut observations = 0usize;
    for seen in &observed {
        for (epoch, digest) in seen {
            let expected = published
                .get(epoch)
                .unwrap_or_else(|| panic!("reader observed unpublished epoch {epoch}"));
            assert_eq!(
                digest, expected,
                "epoch {epoch}: reader digest diverges from the published snapshot"
            );
            observations += 1;
        }
    }
    assert!(observations > 0, "readers never observed a snapshot");

    // The final state still passes the shared from-scratch gate.
    engine.verify_against_scratch().unwrap();
    assert_eq!(engine.epoch(), schedule.len() as u64);
}

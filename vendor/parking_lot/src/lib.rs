//! Offline vendored shim for the `parking_lot` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the (tiny) subset of the `parking_lot` API the
//! workspace uses, backed by `std::sync`. Unlike `std`, `parking_lot` locks
//! do not poison — the shim mirrors that by recovering the guard from a
//! poisoned `std` lock.
//!
//! Swap this path dependency for the real crate once registry access is
//! available; no call sites need to change.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that, like `parking_lot::Mutex`, never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}

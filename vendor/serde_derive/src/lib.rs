//! Offline vendored shim for `serde_derive` — real derive expansion.
//!
//! Parses the derive input with raw `proc_macro` tokens (no `syn`/`quote`
//! in an offline build) and emits field-by-field `Serialize`/`Deserialize`
//! impls against the sibling `serde` shim's data model.
//!
//! Supported shapes, which cover every derive site in the workspace:
//!
//! * structs with named fields — serialized as a JSON object in field
//!   declaration order; deserialization accepts fields in any order,
//!   ignores unknown fields (like real serde without
//!   `deny_unknown_fields`), and errors on missing ones;
//! * enums with only unit variants — serialized as the variant name string.
//!
//! Tuple/unit structs, data-carrying variants, generics, and `#[serde]`
//! attributes are rejected with a compile error rather than silently
//! mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// What the derive input declared.
enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

/// Skips any `#[...]` attributes at the cursor.
fn skip_attributes(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        // The bracketed attribute body.
        if let Some(TokenTree::Group(_)) = tokens.peek() {
            tokens.next();
        }
    }
}

/// Skips `pub` / `pub(crate)` / `pub(super)` visibility at the cursor.
fn skip_visibility(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Extracts field names from the token stream of a `{ ... }` struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Consume the type up to the next top-level comma. Commas nested in
        // parenthesized groups are separate token trees; commas inside
        // generic arguments need angle-bracket depth tracking because `<`
        // and `>` are plain puncts.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    if fields.is_empty() {
        return Err("derive requires at least one named field".to_string());
    }
    Ok(fields)
}

/// Extracts variant names from the token stream of an `enum { ... }` body,
/// rejecting variants that carry data.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(other) => {
                return Err(format!(
                    "variant `{name}` is not a unit variant (found `{other}`); \
                     the serde shim only derives fieldless enums"
                ))
            }
        }
    }
    if variants.is_empty() {
        return Err("derive requires at least one variant".to_string());
    }
    Ok(variants)
}

/// Parses the derive input down to a [`Shape`].
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        match tokens.next() {
            None => return Err("no `struct` or `enum` in derive input".to_string()),
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw != "struct" && kw != "enum" {
                    continue; // visibility or other modifiers
                }
                let name = match tokens.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => return Err(format!("expected type name, found {other:?}")),
                };
                let body = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        return Err(format!(
                            "`{name}` is generic; the serde shim only derives plain types"
                        ))
                    }
                    _ => {
                        return Err(format!(
                            "`{name}` is a tuple or unit type; the serde shim only \
                             derives named-field structs and fieldless enums"
                        ))
                    }
                };
                return if kw == "struct" {
                    Ok(Shape::Struct {
                        name,
                        fields: parse_named_fields(body)?,
                    })
                } else {
                    Ok(Shape::Enum {
                        name,
                        variants: parse_unit_variants(body)?,
                    })
                };
            }
            Some(_) => continue,
        }
    }
}

fn expand_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let mut body = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                     &mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(__st)");
            impl_serialize(name, &body)
        }
        Shape::Enum { name, variants } => {
            let mut body = String::from("match self {\n");
            for v in variants {
                body.push_str(&format!(
                    "{name}::{v} => ::serde::ser::Serializer::serialize_unit_variant(\
                     __serializer, \"{name}\", \"{v}\"),\n"
                ));
            }
            body.push('}');
            impl_serialize(name, &body)
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn expand_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let field_list = fields
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let mut body = format!(
                "const __FIELDS: &[&str] = &[{field_list}];\n\
                 let __entries = ::serde::de::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", __FIELDS)?;\n"
            );
            for f in fields {
                body.push_str(&format!(
                    "let mut __f_{f} = ::core::option::Option::None;\n"
                ));
            }
            body.push_str("for (__key, __value) in __entries {\nmatch __key.as_str() {\n");
            for f in fields {
                body.push_str(&format!(
                    "\"{f}\" => {{ __f_{f} = ::core::option::Option::Some(\
                     ::serde::Deserialize::deserialize(__value)?); }}\n"
                ));
            }
            // Unknown fields are ignored, as in real serde's default.
            body.push_str("_ => {}\n}\n}\n");
            body.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!(
                    "{f}: match __f_{f} {{\n\
                     ::core::option::Option::Some(__v) => __v,\n\
                     ::core::option::Option::None => return ::core::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::missing_field(\"{name}\", \"{f}\")),\n\
                     }},\n"
                ));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Shape::Enum { name, variants } => {
            let mut body = String::from(
                "let __s = ::serde::de::Deserializer::deserialize_string(__deserializer)?;\n\
                 match __s.as_str() {\n",
            );
            for v in variants {
                body.push_str(&format!(
                    "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"
                ));
            }
            body.push_str(&format!(
                "__other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::unknown_variant(\"{name}\", __other)),\n}}"
            ));
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer>(__deserializer: __D)\n\
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => expand_serialize(&shape)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&format!("#[derive(Serialize)]: {msg}")),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => expand_deserialize(&shape)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&format!("#[derive(Deserialize)]: {msg}")),
    }
}

//! Offline vendored shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata —
//! nothing serializes yet (no `serde_json` call sites exist). These derives
//! therefore expand to marker trait impls so the attribute stays valid and
//! the types advertise serializability, without pulling in the real proc
//! macro stack. Replace together with `vendor/serde` when registry access is
//! available.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier that follows `struct`/`enum` in the derive input
/// and renders `impl serde::Trait for Ident {}`. Generic types would need
/// real parsing; the workspace only derives on plain types.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ref id) = tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return format!("impl ::serde::{trait_name} for {name} {{}}")
                        .parse()
                        .expect("generated impl parses");
                }
            }
        }
    }
    TokenStream::new()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

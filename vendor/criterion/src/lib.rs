//! Offline vendored shim for the `criterion` crate.
//!
//! Implements the subset of the criterion API the bench targets use —
//! `Criterion` configuration, benchmark groups, `bench_function`/
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros — with a simple mean-of-samples timer instead
//! of criterion's statistics engine. Results print as
//! `group/bench ... mean <time> (N samples of M iters)`. Replace the path
//! dependency with real criterion for publication-grade statistics; the
//! bench sources need no changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Reads a substring filter from the command line (the way
    /// `cargo bench -- <filter>` is conventionally used).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.render(), f);
        self
    }

    fn run_one<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) => println!(
                "{label:<50} mean {:>12} ({} samples of {} iters)",
                format_duration(r.mean),
                r.samples,
                r.iters_per_sample
            ),
            None => println!("{label:<50} (no measurement)"),
        }
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        self.criterion.run_one(&label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (n, Some(p)) => format!("{n}/{p}"),
            (n, None) => n.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

struct Report {
    mean: Duration,
    samples: usize,
    iters_per_sample: u64,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and estimate the per-iteration cost while at it.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Choose an iteration count so samples are neither trivially short
        // nor blow past the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += t.elapsed();
        }
        self.report = Some(Report {
            mean: total / (self.sample_size.max(1) as u32 * iters as u32),
            samples: self.sample_size,
            iters_per_sample: iters,
        });
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Mirrors criterion's macro: defines a function that runs every target
/// against the group's `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_rendering() {
        assert_eq!(BenchmarkId::new("side_U", 4).render(), "side_U/4");
        assert_eq!(BenchmarkId::from_parameter(10).render(), "10");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_produces_report() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }
}

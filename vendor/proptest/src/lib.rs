//! Offline vendored shim for the `proptest` crate.
//!
//! Implements the surface the workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `prop_map`/`prop_flat_map`, `collection::vec`,
//! `any::<bool>()`, and the `prop_assert*` macros. Cases are generated from
//! a fixed seed, so failures reproduce deterministically.
//!
//! Failures **shrink**: the failing input tuple is repeatedly replaced by
//! simpler candidates ([`Strategy::shrink`] — integers halve toward the
//! range start, vectors truncate and shrink elements, `true` flips to
//! `false`) as long as the failure still reproduces, then the minimized
//! input is re-run outside the catch so the real assertion message
//! surfaces. Mapped strategies (`prop_map`/`prop_flat_map`) are one-way
//! functions and do not shrink — their output is reported as generated.
//! Swap the path dependency for real proptest when registry access is
//! available; test sources need no changes.

use std::ops::Range;

/// Deterministic case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler candidates for a failing `value`, most aggressive first.
    /// The runner keeps a candidate only if the failure still reproduces.
    /// The default (no candidates) is correct for strategies that cannot
    /// shrink, e.g. one-way `prop_map`s.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    fn prop_map<O, F>(self, f: F) -> strategy::MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> strategy::FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        strategy::FlatMapStrategy { inner: self, f }
    }
}

pub mod strategy {
    use super::{Strategy, TestRng};

    pub struct MapStrategy<I, F> {
        pub(crate) inner: I,
        pub(crate) f: F,
    }

    impl<I, F, O> Strategy for MapStrategy<I, F>
    where
        I: Strategy,
        F: Fn(I::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMapStrategy<I, F> {
        pub(crate) inner: I,
        pub(crate) f: F,
    }

    impl<I, F, S> Strategy for FlatMapStrategy<I, F>
    where
        I: Strategy,
        S: Strategy,
        F: Fn(I::Value) -> S,
    {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Always yields clones of one value (proptest's `Just`).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }

            /// Halve the offset from the range start: `start`, the
            /// midpoint, and one step down. Monotone predicates converge
            /// to their exact boundary value.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let offset = (*value as u64).wrapping_sub(self.start as u64);
                let mut offsets = Vec::new();
                for o in [0, offset / 2, offset.saturating_sub(1)] {
                    if o < offset && !offsets.contains(&o) {
                        offsets.push(o);
                    }
                }
                offsets
                    .into_iter()
                    .map(|o| self.start.wrapping_add(o as $t))
                    .collect()
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($( ( $(($name:ident, $idx:tt)),+ ) )*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }

            /// One component shrunk at a time, the rest held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    ((A, 0))
    ((A, 0), (B, 1))
    ((A, 0), (B, 1), (C, 2))
    ((A, 0), (B, 1), (C, 2), (D, 3))
    ((A, 0), (B, 1), (C, 2), (D, 3), (E, 4))
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length distribution for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }

        /// Truncations first (down to the minimum length, halving, one
        /// off the end), then element-wise shrinks — the latter only for
        /// short vectors, so candidate generation stays cheap on the
        /// thousands-of-elements inputs some tests use.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            if value.len() > lo {
                let mut lengths = vec![lo];
                let half = value.len() / 2;
                if half > lo && half < value.len() {
                    lengths.push(half);
                }
                if !lengths.contains(&(value.len() - 1)) {
                    lengths.push(value.len() - 1);
                }
                for len in lengths {
                    out.push(value[..len].to_vec());
                }
            }
            if value.len() <= 64 {
                for (i, item) in value.iter().enumerate() {
                    for candidate in self.element.shrink(item) {
                        let mut next = value.clone();
                        next[i] = candidate;
                        out.push(next);
                    }
                }
            }
            out
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// Runs one case body against a clone of `value`, reporting whether it
/// passed (no panic). Free function rather than a macro-local closure so
/// the body closure's argument type is pinned by `S::Value` — bodies that
/// need the concrete type early (e.g. array literals of the bindings)
/// would otherwise hit closure-inference ordering limits.
#[doc(hidden)]
pub fn case_passes<S: Strategy>(
    _strategy: &S,
    value: &S::Value,
    body: impl FnOnce(S::Value),
) -> bool
where
    S::Value: Clone,
{
    let value = value.clone();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(value))).is_ok()
}

/// Runs the body uncaught (used to surface the minimized failure).
#[doc(hidden)]
pub fn run_case<S: Strategy>(_strategy: &S, value: S::Value, body: impl FnOnce(S::Value)) {
    body(value)
}

/// Runs `f` (the shrink loop) with the default panic hook silenced for
/// panics raised *on this thread*, so each failing shrink candidate does
/// not dump its own panic message — only the initial failure and the final
/// minimized re-run print. Panics on other threads (parallel tests, pool
/// workers) still reach the previous hook.
#[doc(hidden)]
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Arc;
    let shrinking_thread = std::thread::current().id();
    let previous: Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync> =
        Arc::from(std::panic::take_hook());
    let delegate = Arc::clone(&previous);
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current().id() != shrinking_thread {
            delegate(info);
        }
    }));
    let out = f();
    // Restore the previous hook (wrapped — the original Box was consumed).
    drop(std::panic::take_hook());
    std::panic::set_hook(Box::new(move |info| previous(info)));
    out
}

/// Deterministic base seed; each test function offsets it by a hash of the
/// function name, each case by its index.
#[doc(hidden)]
pub fn case_seed(fn_name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in fn_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::TestRng::new($crate::case_seed(stringify!($name), case));
                // All bindings generate through one tuple strategy so the
                // whole input can be shrunk as a unit. Component order
                // matches the binding order, so the value stream (and thus
                // every historical seed) is unchanged.
                let __strategy = ($(($strategy),)+);
                let __vals = $crate::Strategy::new_value(&__strategy, &mut rng);
                if $crate::case_passes(&__strategy, &__vals, |($($pat,)+)| $body) {
                    continue;
                }
                // Failure: greedily take any simpler candidate that still
                // fails, bounded so pathological bodies terminate. Panic
                // output from the probed candidates is suppressed.
                let __vals = $crate::with_quiet_panics(|| {
                    let mut __vals = __vals;
                    let mut __budget = 512usize;
                    '__shrinking: while __budget > 0 {
                        let __candidates = $crate::Strategy::shrink(&__strategy, &__vals);
                        for __candidate in __candidates {
                            if __budget == 0 {
                                break '__shrinking;
                            }
                            __budget -= 1;
                            if !$crate::case_passes(
                                &__strategy,
                                &__candidate,
                                |($($pat,)+)| $body,
                            ) {
                                __vals = __candidate;
                                continue '__shrinking;
                            }
                        }
                        break;
                    }
                    __vals
                });
                // Re-run the minimized input uncaught so the original
                // assertion failure (with its message) surfaces.
                eprintln!(
                    "proptest: case {} of `{}` failed; re-running minimized input",
                    case,
                    stringify!($name),
                );
                $crate::run_case(&__strategy, __vals, |($($pat,)+)| $body);
                panic!(
                    "proptest: case {case} failed when generated but its minimized \
                     form passed on re-run (non-deterministic test body?)"
                );
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Assert stand-ins: failures panic with the message; the `proptest!`
/// runner catches the panic, shrinks the input, and re-raises.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let strat = crate::collection::vec(0u64..100, 1..10);
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    #[test]
    fn flat_map_composes() {
        let strat = (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n..n + 1).prop_map(move |v| (n, v))
        });
        let mut rng = crate::TestRng::new(7);
        for _ in 0..100 {
            let (n, v) = strat.new_value(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u64..50, flag in any::<bool>()) {
            prop_assert!(x < 50);
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn macro_with_config(xs in crate::collection::vec((0u32..9, 0u32..9), 0..20)) {
            for (a, b) in xs {
                prop_assert!(a < 9 && b < 9);
            }
        }

        #[test]
        fn second_fn_in_same_block(y in 3usize..4) {
            prop_assert_eq!(y, 3);
        }
    }

    /// Drives a shrink loop by hand (the macro's algorithm) and returns the
    /// minimized failing value.
    fn minimize<S: Strategy>(
        strat: &S,
        mut value: S::Value,
        fails: impl Fn(&S::Value) -> bool,
    ) -> S::Value
    where
        S::Value: Clone,
    {
        assert!(fails(&value), "starting value must fail");
        'outer: loop {
            for candidate in strat.shrink(&value) {
                if fails(&candidate) {
                    value = candidate;
                    continue 'outer;
                }
            }
            return value;
        }
    }

    #[test]
    fn integer_shrink_converges_to_boundary() {
        // Monotone predicate: halving lands exactly on the threshold.
        let strat = (0u64..1000,);
        let min = minimize(&strat, (900,), |v| v.0 >= 17);
        assert_eq!(min.0, 17);
        // Range with a nonzero start shrinks toward the start, not 0.
        let strat = (5i32..200,);
        let min = minimize(&strat, (150,), |v| v.0 >= 5);
        assert_eq!(min.0, 5);
    }

    #[test]
    fn vector_shrink_truncates_to_minimal_length() {
        let strat = crate::collection::vec(5u64..6, 0..40);
        let start = vec![5u64; 33];
        let min = minimize(&strat, start, |v| v.len() >= 3);
        assert_eq!(min.len(), 3);
        // Length floor is respected.
        let strat = crate::collection::vec(0u32..10, 2..40);
        let min = minimize(&strat, vec![9, 9, 9, 9, 9], |v| v.len() >= 2);
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn vector_elements_shrink_too() {
        let strat = crate::collection::vec(0u64..100, 1..8);
        let min = minimize(&strat, vec![70, 80], |v| v.iter().any(|&x| x >= 30));
        assert_eq!(min, vec![30]);
    }

    #[test]
    fn bool_and_tuple_shrink() {
        let strat = (any::<bool>(), 0u8..50);
        let min = minimize(&strat, (true, 40), |v| v.1 >= 10);
        assert_eq!(min, (false, 10));
    }

    #[test]
    fn passing_values_produce_no_candidates_at_range_start() {
        assert!(Strategy::shrink(&(3u64..9), &3).is_empty());
        assert!(Strategy::shrink(&crate::AnyBool, &false).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        // End-to-end through the macro: the failing body must shrink and
        // re-raise (the re-run of the minimized input panics).
        #[test]
        #[should_panic]
        fn failing_case_shrinks_and_panics(x in 10u64..1000) {
            prop_assert!(x < 10, "got {}", x);
        }
    }
}

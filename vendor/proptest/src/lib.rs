//! Offline vendored shim for the `proptest` crate.
//!
//! Implements the surface the workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `prop_map`/`prop_flat_map`, `collection::vec`,
//! `any::<bool>()`, and the `prop_assert*` macros. Cases are generated from
//! a fixed seed, so failures reproduce deterministically. Unlike real
//! proptest there is **no shrinking** — a failure reports the case index
//! and the assert message only. Swap the path dependency for real proptest
//! when registry access is available; test sources need no changes.

use std::ops::Range;

/// Deterministic case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> strategy::FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        strategy::FlatMapStrategy { inner: self, f }
    }
}

pub mod strategy {
    use super::{Strategy, TestRng};

    pub struct MapStrategy<I, F> {
        pub(crate) inner: I,
        pub(crate) f: F,
    }

    impl<I, F, O> Strategy for MapStrategy<I, F>
    where
        I: Strategy,
        F: Fn(I::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMapStrategy<I, F> {
        pub(crate) inner: I,
        pub(crate) f: F,
    }

    impl<I, F, S> Strategy for FlatMapStrategy<I, F>
    where
        I: Strategy,
        S: Strategy,
        F: Fn(I::Value) -> S,
    {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Always yields clones of one value (proptest's `Just`).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length distribution for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// Deterministic base seed; each test function offsets it by a hash of the
/// function name, each case by its index.
#[doc(hidden)]
pub fn case_seed(fn_name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in fn_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::TestRng::new($crate::case_seed(stringify!($name), case));
                $(let $pat = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// No-shrinking stand-ins: failures panic immediately with the message.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let strat = crate::collection::vec(0u64..100, 1..10);
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    #[test]
    fn flat_map_composes() {
        let strat = (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n..n + 1).prop_map(move |v| (n, v))
        });
        let mut rng = crate::TestRng::new(7);
        for _ in 0..100 {
            let (n, v) = strat.new_value(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u64..50, flag in any::<bool>()) {
            prop_assert!(x < 50);
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn macro_with_config(xs in crate::collection::vec((0u32..9, 0u32..9), 0..20)) {
            for (a, b) in xs {
                prop_assert!(a < 9 && b < 9);
            }
        }

        #[test]
        fn second_fn_in_same_block(y in 3usize..4) {
            prop_assert_eq!(y, 3);
        }
    }
}

//! Lock-free Chase–Lev work-stealing deque.
//!
//! This is the dynamic circular work-stealing deque of Chase & Lev, with
//! the memory orderings of Lê, Pop, Cohen & Zappa Nardelli's C11
//! formulation ("Correct and Efficient Work-Stealing for Weak Memory
//! Models", PPoPP'13):
//!
//! * the **owner** pushes and pops at the *bottom* (LIFO), entirely
//!   wait-free — no CAS except on the one-element race;
//! * **thieves** take from the *top* (FIFO) and race each other (and the
//!   owner, when one element remains) with a single `SeqCst`
//!   compare-exchange on `top`;
//! * the buffer is a growable power-of-two circular array. The owner
//!   grows it by copying the live window `[top, bottom)` into a buffer of
//!   twice the capacity and publishing it with a `Release` store.
//!
//! Two representation choices keep the unsafe surface small:
//!
//! 1. **Elements are stored as thin raw pointers** (`Box<T>` leaked into
//!    an `AtomicPtr<T>` slot). A thief may read a slot that the owner is
//!    concurrently recycling; because the read is a relaxed atomic load
//!    of a pointer-sized word it is never a data race, and the value is
//!    only *dereferenced* after the thief's CAS on `top` succeeds — at
//!    which point the protocol guarantees the slot was not recycled
//!    (occupancy never exceeds capacity, so an index is overwritten only
//!    after `top` has moved past it).
//! 2. **Retired buffers go to a graveyard, not the allocator.** A thief
//!    can hold a pointer to a superseded buffer and still read a slot
//!    from it (the CAS decides whether the read value is used, and the
//!    grow copied the live window, so a winning CAS reads the same
//!    pointer either way). Freeing that buffer would be a use-after-free,
//!    so grown-out buffers are parked until the deque itself drops.
//!    Doubling growth bounds graveyard memory by ~2× the peak buffer.
//!
//! The owner-side operations take `&self` but are `unsafe fn`: the
//! Chase–Lev protocol is only sound with a *single* concurrent owner, and
//! that uniqueness is a property of the call sites (in the pool, deque
//! `i` is pushed/popped only by worker thread `i`), not of this type.

use std::ptr;
use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Result of a [`Deque::steal`] attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; the deque may still
    /// hold work — retry or move on to another victim.
    Retry,
    /// Took the oldest element.
    Success(T),
}

impl<T> Steal<T> {
    /// True for `Steal::Success`.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

/// A growable circular buffer of pointer slots, indexed by the deque's
/// monotonically increasing `top`/`bottom` counters modulo capacity.
struct Buffer<T> {
    slots: Box<[AtomicPtr<T>]>,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
}

impl<T> Buffer<T> {
    fn new(capacity: usize) -> Box<Buffer<T>> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            slots,
            mask: capacity - 1,
        })
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// The slot for logical index `i`. Indices are non-negative and only
    /// ever increase, so the cast is lossless.
    fn slot(&self, i: isize) -> &AtomicPtr<T> {
        &self.slots[(i as usize) & self.mask]
    }
}

/// Initial buffer capacity (slots, not bytes — each slot is one pointer).
const MIN_CAPACITY: usize = 32;

/// A lock-free Chase–Lev deque. `steal` is safe from any thread;
/// `push`/`pop` are owner-only (see the module docs and per-method
/// safety contracts).
pub struct Deque<T> {
    /// Next index a thief will take. Only ever incremented (by a winning
    /// CAS); never wraps in practice (an isize of pushes is unreachable).
    top: AtomicIsize,
    /// Index one past the owner's most recent push. Written only by the
    /// owner.
    bottom: AtomicIsize,
    /// Current buffer. Replaced (with a `Release` store) only by the
    /// owner, inside `grow`.
    buffer: AtomicPtr<Buffer<T>>,
    /// Superseded buffers, kept alive until `Drop` because in-flight
    /// thieves may still read (never dereference-after-losing) from them.
    /// Pushed only by the owner; the mutex exists for `Sync`, not for the
    /// hot path.
    graveyard: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the deque owns its elements as leaked `Box<T>`; all shared
// mutation goes through atomics (plus the graveyard mutex). `T: Send`
// suffices because elements cross threads but are never aliased: exactly
// one winner (owner pop or thief CAS) reclaims each leaked box.
unsafe impl<T: Send> Send for Deque<T> {}
// SAFETY: same argument as `Send` above — concurrent `&Deque` access is
// exactly the owner/thief protocol: atomics order every shared field and
// the CAS in `steal` picks a unique winner per element.
unsafe impl<T: Send> Sync for Deque<T> {}

impl<T> Default for Deque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Deque<T> {
    pub fn new() -> Deque<T> {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::new(MIN_CAPACITY))),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Owner-side push at the bottom.
    ///
    /// # Safety
    /// Must only be called by the deque's unique owner thread: no other
    /// `push`/`pop` may execute concurrently (concurrent `steal`s are
    /// fine — that is the point).
    pub unsafe fn push(&self, value: T) {
        let item = Box::into_raw(Box::new(value));
        // ordering: `bottom` is written only by the owner (us) — Relaxed.
        let b = self.bottom.load(Ordering::Relaxed);
        // ordering: Acquire pairs with the thieves' `top` CAS so the
        // occupancy check below sees slots already drained by steals.
        let t = self.top.load(Ordering::Acquire);
        // ordering: `buffer` is replaced only by the owner (us) — Relaxed.
        let mut buf = self.buffer.load(Ordering::Relaxed);
        if b.wrapping_sub(t) >= (*buf).capacity() as isize {
            self.grow(t, b);
            // ordering: owner-private reload of our own `grow` store.
            buf = self.buffer.load(Ordering::Relaxed);
        }
        // ordering: Relaxed slot store; publication happens via the
        // Release fence + `bottom` store below, never through the slot.
        (*buf).slot(b).store(item, Ordering::Relaxed);
        // ordering: publish the slot before the new bottom — a thief that
        // observes `bottom > b` (Acquire) must also observe the slot's
        // contents (Lê et al. Fig. 1, the Release half).
        std::sync::atomic::fence(Ordering::Release);
        // ordering: Relaxed store; ordered by the fence above.
        self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
    }

    /// Owner-side pop at the bottom (LIFO). Returns `None` when empty.
    ///
    /// # Safety
    /// Same contract as [`Deque::push`]: unique-owner threads only.
    pub unsafe fn pop(&self) -> Option<T> {
        // ordering: owner-private reads — we are the only writer of
        // `bottom` and `buffer`.
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        let buf = self.buffer.load(Ordering::Relaxed); // ordering: owner-private too
                                                       // ordering: announce the claim on index `b` before reading `top` —
                                                       // the SeqCst fence pairs with the fence in `steal` so owner and
                                                       // thief cannot both miss each other's claim on the last element
                                                       // (the store itself is Relaxed; the fence provides the order).
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst); // ordering: see claim above
                                                    // ordering: Relaxed load; ordered after the claim by the fence.
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // ordering: owner-private restore of the canonical empty
            // state; thieves tolerate any stale `bottom` they read.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        // ordering: Relaxed slot read — the owner published this slot
        // itself, so no synchronization is needed to see it.
        let item = (*buf).slot(b).load(Ordering::Relaxed);
        if t == b {
            // ordering: exactly one element — race thieves for it on
            // `top`. SeqCst success keeps the CAS in the same total order
            // as the thieves' CASes; failure takes no ordering because we
            // drop the element claim entirely.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // ordering: owner-private restore (see above).
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            if !won {
                // A thief got it; it will (or did) dereference `item`.
                return None;
            }
            return Some(*Box::from_raw(item));
        }
        // More than one element: the bottom is uncontended.
        Some(*Box::from_raw(item))
    }

    /// Thief-side take from the top (FIFO). Safe from any thread.
    pub fn steal(&self) -> Steal<T> {
        // ordering: Acquire pairs with other thieves' winning CASes so
        // this thief starts from a current-enough `top`.
        let t = self.top.load(Ordering::Acquire);
        // ordering: pairs with the fence in `pop` — order the `top` read
        // before the `bottom` read so a concurrent owner claim is not
        // missed (Lê et al. Fig. 1, the SeqCst pair).
        std::sync::atomic::fence(Ordering::SeqCst);
        // ordering: Acquire pairs with the Release fence in `push` — a
        // `bottom` past `t` implies the slot contents are visible.
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // ordering: Acquire pairs with the Release publication in `grow` —
        // a buffer observed here has its live window fully copied.
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: buffers are never freed while the deque lives (the
        // graveyard keeps superseded ones), so `buf` is dereferenceable.
        // The slot value read here may be stale; it is used only if the
        // CAS below proves `top` did not move, which the occupancy bound
        // (`bottom - top <= capacity`) extends to "the slot was not
        // recycled".
        // ordering: Relaxed slot read — validity comes from the CAS below,
        // not from this load's ordering.
        let item = unsafe { (*buf).slot(t).load(Ordering::Relaxed) };
        // ordering: SeqCst success joins the owner's and thieves' CASes in
        // one total order, picking a unique winner for index `t`; failure
        // abandons the claim and needs no ordering.
        if self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Lost to the owner (last element) or another thief.
            return Steal::Retry;
        }
        // SAFETY: the CAS won, so this thief uniquely owns index `t` and
        // `item` is the pointer the owner published there.
        Steal::Success(unsafe { *Box::from_raw(item) })
    }

    /// Owner-side buffer growth: copy the live window `[t, b)` into a
    /// buffer of twice the capacity, publish it, retire the old one.
    ///
    /// # Safety
    /// Owner-only (called from `push`).
    unsafe fn grow(&self, t: isize, b: isize) {
        // ordering: owner-private read — only the owner replaces `buffer`.
        let old = self.buffer.load(Ordering::Relaxed);
        let new = Buffer::new(((*old).capacity() * 2).max(MIN_CAPACITY));
        let mut i = t;
        while i != b {
            // ordering: Relaxed copy of owner-published slots into a
            // buffer no thief can see yet; the Release store below
            // publishes the whole window at once.
            (*new)
                .slot(i)
                .store((*old).slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
            i = i.wrapping_add(1);
        }
        let new = Box::into_raw(new);
        // ordering: Release — a thief that Acquire-loads the new buffer
        // sees every slot copied above.
        self.buffer.store(new, Ordering::Release);
        self.graveyard
            .lock()
            .expect("deque graveyard poisoned")
            .push(old);
    }

    /// Approximate number of queued elements; exact at quiescence.
    pub fn len(&self) -> usize {
        // ordering: advisory snapshot — callers tolerate any interleaving,
        // so Relaxed reads suffice.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed); // ordering: advisory too
        b.wrapping_sub(t).max(0) as usize
    }

    /// Approximate emptiness; exact at quiescence.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        // `&mut self`: no owner or thief is live, plain reads suffice.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        let buf = *self.buffer.get_mut();
        let mut i = t;
        while i < b {
            // SAFETY: indices in [t, b) hold un-reclaimed leaked boxes.
            // ordering: `&mut self` means no concurrent access — Relaxed.
            unsafe { drop(Box::from_raw((*buf).slot(i).load(Ordering::Relaxed))) };
            i += 1;
        }
        // SAFETY: the current buffer and every graveyard entry came from
        // `Box::into_raw` and are reclaimed exactly once, here.
        unsafe { drop(Box::from_raw(buf)) };
        for old in self
            .graveyard
            .get_mut()
            .expect("deque graveyard poisoned")
            .drain(..)
        {
            // SAFETY: graveyard entries are `Box::into_raw` buffers parked
            // by `grow`, each present exactly once — reclaimed here only.
            unsafe { drop(Box::from_raw(old)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn owner_pop_is_lifo() {
        let d = Deque::new();
        // SAFETY: this thread is the deque's only owner; no steals run.
        unsafe {
            d.push(1);
            d.push(2);
            d.push(3);
            assert_eq!(d.pop(), Some(3));
            assert_eq!(d.pop(), Some(2));
            assert_eq!(d.pop(), Some(1));
            assert_eq!(d.pop(), None);
            assert_eq!(d.pop(), None); // empty stays empty
        }
    }

    #[test]
    fn steal_is_fifo() {
        let d = Deque::new();
        // SAFETY: this thread is the deque's only owner; no steals run
        // until the pushes are done.
        unsafe {
            d.push(1);
            d.push(2);
            d.push(3);
        }
        assert!(matches!(d.steal(), Steal::Success(1)));
        assert!(matches!(d.steal(), Steal::Success(2)));
        assert!(matches!(d.steal(), Steal::Success(3)));
        assert!(matches!(d.steal(), Steal::Empty));
    }

    #[test]
    fn growth_preserves_contents_and_order() {
        let d = Deque::new();
        let n = MIN_CAPACITY * 8 + 3; // force several doublings
                                      // SAFETY: this thread is the deque's only owner; no steals run
                                      // until the pushes are done.
        unsafe {
            for i in 0..n {
                d.push(i);
            }
        }
        assert_eq!(d.len(), n);
        for want in 0..n {
            match d.steal() {
                Steal::Success(got) => assert_eq!(got, want),
                other => panic!("expected Success({want}), got {other:?}"),
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    fn interleaved_push_pop_steal_reclaims_every_element() {
        use std::sync::atomic::AtomicBool;
        let d = Arc::new(Deque::new());
        let total = 20_000usize;
        let taken = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let owner_done = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                let taken = Arc::clone(&taken);
                let sum = Arc::clone(&sum);
                let owner_done = Arc::clone(&owner_done);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            taken.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if owner_done.load(Ordering::Acquire) && d.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        // Owner: push everything, popping a few along the way.
        let mut popped = 0usize;
        let mut popped_sum = 0usize;
        // SAFETY: push/pop stay on this one owner thread; the spawned
        // threads only steal, which is the allowed concurrent operation.
        unsafe {
            for i in 1..=total {
                d.push(i);
                if i % 3 == 0 {
                    if let Some(v) = d.pop() {
                        popped += 1;
                        popped_sum += v;
                    }
                }
            }
            while let Some(v) = d.pop() {
                popped += 1;
                popped_sum += v;
            }
        }
        owner_done.store(true, Ordering::Release);
        for th in thieves {
            th.join().unwrap();
        }
        let stolen = taken.load(Ordering::Relaxed);
        assert_eq!(
            popped + stolen,
            total,
            "every pushed element must be reclaimed exactly once"
        );
        assert_eq!(
            popped_sum + sum.load(Ordering::Relaxed),
            total * (total + 1) / 2,
            "element identities must be preserved"
        );
    }
}

//! Offline vendored shim for the `rayon` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of rayon the workspace uses on top of `std::thread::scope`:
//!
//! * parallel iterators over ranges, vectors, and slices with the adapters
//!   the algorithms need (`map`, `filter`, `enumerate`, `zip`, `fold`,
//!   `reduce`, `for_each`, `sum`, `max`, `collect`);
//! * `ThreadPoolBuilder`/`ThreadPool::install` and `current_num_threads`,
//!   implemented as a thread-local *parallelism budget* — `install` scopes
//!   the budget, and every parallel terminal splits its input into that many
//!   parts, each driven on its own scoped thread;
//! * `scope`/`Scope::spawn` forwarded to `std::thread::scope`.
//!
//! Semantic differences from real rayon, acceptable for correctness-first
//! use (see ROADMAP "Open items" for the planned work-stealing upgrade):
//! threads are spawned per terminal operation instead of pooled, there is
//! no work stealing, and `par_sort_unstable` sorts sequentially.
//! `enumerate` indices are only meaningful when no `filter` precedes them —
//! same as rayon, where `filter` drops `IndexedParallelIterator`.

use std::cell::Cell;
use std::sync::Arc;

pub mod iter;

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    /// 0 = unset; parallel terminals then use the machine's parallelism.
    static POOL_SIZE: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of threads the ambient "pool" grants to parallel work.
pub fn current_num_threads() -> usize {
    let n = POOL_SIZE.with(Cell::get);
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Restores the previous parallelism budget on drop (panic-safe).
struct BudgetGuard {
    prev: usize,
}

impl BudgetGuard {
    fn set(n: usize) -> Self {
        BudgetGuard {
            prev: POOL_SIZE.with(|c| c.replace(n)),
        }
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        POOL_SIZE.with(|c| c.set(self.prev));
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "use the default parallelism", like rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { size })
    }
}

/// A parallelism budget masquerading as a pool: `install` makes
/// `current_num_threads()` report this pool's size inside `f`, which is what
/// sizes every parallel split performed within.
#[derive(Debug)]
pub struct ThreadPool {
    size: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = BudgetGuard::set(self.size);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.size
    }
}

/// Fork-join scope; all tasks spawned on it complete before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    budget: usize,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        let budget = self.budget;
        inner.spawn(move || {
            let _guard = BudgetGuard::set(budget);
            f(&Scope { inner, budget });
        });
    }
}

pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let budget = current_num_threads();
    std::thread::scope(|s| f(&Scope { inner: s, budget }))
}

/// Splits `0..len` into at most `parts` non-empty contiguous spans.
pub(crate) fn split_spans(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Drives each part on its own scoped thread (inline when there is only
/// one), returning per-part results in part order. Panics propagate with
/// their original payload.
pub(crate) fn run_parts<'a, T, R, F>(parts: Vec<iter::Part<'a, T>>, job: F) -> Vec<R>
where
    T: Send + 'a,
    R: Send,
    F: Fn(Box<dyn Iterator<Item = T> + Send + 'a>) -> R + Sync,
{
    if parts.len() <= 1 {
        return parts.into_iter().map(|p| job(p.iter)).collect();
    }
    let budget = current_num_threads();
    std::thread::scope(|s| {
        let job = &job;
        let handles: Vec<_> = parts
            .into_iter()
            .map(|p| {
                s.spawn(move || {
                    let _guard = BudgetGuard::set(budget);
                    job(p.iter)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Shared closure handle for adapter parts; avoids requiring `F: Clone`.
pub(crate) type Fun<F> = Arc<F>;

pub(crate) fn share<F>(f: F) -> Fun<F> {
    Arc::new(f)
}

//! Offline vendored shim for the `rayon` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of rayon the workspace uses, executing all parallel work on
//! a **lazily-initialized persistent worker pool** (see [`pool`]):
//!
//! * parallel iterators over ranges, vectors, and slices with the adapters
//!   the algorithms need (`map`, `filter`, `enumerate`, `zip`, `fold`,
//!   `reduce`, `for_each`, `sum`, `max`, `collect`);
//! * a real **parallel merge sort** behind `par_sort_unstable`/`_by`/
//!   `_by_key` (per-worker runs + parallel pairwise merge, sequential
//!   below ~4k elements — see `sort.rs`);
//! * [`join`] — the fork-join primitive, executed on the pool;
//! * `ThreadPoolBuilder`/`ThreadPool::install` and `current_num_threads`,
//!   implemented as a thread-local *parallelism budget*: `install` scopes
//!   the budget, every parallel terminal splits its input into that many
//!   parts, and the parts run as pool jobs. The default budget honours
//!   `RAYON_NUM_THREADS`, like real rayon's global pool;
//! * `scope`/`Scope::spawn`, whose tasks are pool jobs as well — `scope`
//!   blocks (while helping drain the queue) until every spawn finished.
//!
//! Like real rayon, the pool **work-steals**: every worker owns a
//! lock-free Chase–Lev deque (see [`deque`]; LIFO for itself, FIFO for
//! thieves picked by seeded rotation) and the shared injector only
//! receives external submissions, so skewed workloads rebalance
//! dynamically instead of contending on one queue (see [`pool`]).
//! Parallel terminals and the sort's merges split **adaptively**: while
//! idle thieves exist a construct forks, otherwise it runs sequentially
//! (`split_hint` / `pool::split_wanted`), replacing fixed chunk counts.
//! [`scheduler_stats`] snapshots the scheduler's counters (tasks executed
//! per worker, steals, injector traffic) for tests and the CI bench gate.
//!
//! Remaining semantic difference from real rayon, acceptable for this
//! workspace: `enumerate` indices are only meaningful when no `filter`
//! precedes them (same as rayon, where `filter` drops
//! `IndexedParallelIterator`).

use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

pub mod deque;
pub mod iter;
pub mod pool;
pub(crate) mod sort;

pub use pool::{join, scheduler_stats, total_workers_spawned, SchedulerStats};

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    /// 0 = unset; parallel terminals then use the default parallelism.
    static POOL_SIZE: Cell<usize> = const { Cell::new(0) };
}

/// Default parallelism budget: `RAYON_NUM_THREADS` if set and positive
/// (matching real rayon's global pool), else the machine's parallelism.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Number of threads the ambient "pool" grants to parallel work.
pub fn current_num_threads() -> usize {
    let n = POOL_SIZE.with(Cell::get);
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Restores the previous parallelism budget on drop (panic-safe).
pub(crate) struct BudgetGuard {
    prev: usize,
}

impl BudgetGuard {
    pub(crate) fn set(n: usize) -> Self {
        BudgetGuard {
            prev: POOL_SIZE.with(|c| c.replace(n)),
        }
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        POOL_SIZE.with(|c| c.set(self.prev));
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "use the default parallelism", like rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { size })
    }
}

/// A parallelism budget over the shared persistent pool: `install` makes
/// `current_num_threads()` report this pool's size inside `f`, which is
/// what sizes every parallel split performed within. All `ThreadPool`s
/// share the global worker set; the budget caps how many jobs a terminal
/// creates, which is what bounds its concurrency.
#[derive(Debug)]
pub struct ThreadPool {
    size: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = BudgetGuard::set(self.size);
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.size
    }
}

/// Fork-join scope; all tasks spawned on it complete before [`scope`]
/// returns. Tasks run as persistent-pool jobs and inherit the spawning
/// scope's parallelism budget.
pub struct Scope<'scope, 'env: 'scope> {
    state: Arc<pool::Latch>,
    budget: usize,
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        let budget = self.budget;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                state: Arc::clone(&state),
                budget,
                _marker: PhantomData,
            };
            f(&nested);
        });
        // SAFETY: `scope` waits on this latch until every spawned job
        // (including jobs spawned by jobs) completed, so the erased
        // borrows outlive all executions.
        unsafe { pool::submit(&self.state, budget, job) };
    }
}

pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let budget = current_num_threads();
    let state = pool::Latch::new();
    let scope = Scope {
        state: Arc::clone(&state),
        budget,
        _marker: PhantomData,
    };
    // Even if `f` itself panics, already-spawned tasks borrow `'env` data
    // and must finish before we unwind out of here.
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
    pool::help_until_done(&state);
    match result {
        Ok(r) => {
            if let Some(payload) = state.take_panic() {
                panic::resume_unwind(payload);
            }
            r
        }
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Adaptive split width for a parallel terminal: how many parts to cut
/// the input into right now. Budget 1 never splits (the single-thread
/// fast path). Otherwise external callers always split to the full
/// ambient budget — their parts feed the injector, which the workers and
/// the caller itself drain — while a terminal running *on* a worker
/// splits only when some thief is idle to take the parts; when every
/// thread is busy, the split would only queue boxing/latch overhead that
/// the worker ends up draining itself, so the terminal runs sequentially.
/// This replaces the previous fixed parts-per-terminal chunking.
pub(crate) fn split_hint() -> usize {
    let budget = current_num_threads();
    if budget <= 1 || !pool::split_wanted() {
        1
    } else {
        budget
    }
}

/// Splits `0..len` into at most `parts` non-empty contiguous spans.
pub(crate) fn split_spans(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Drives each part as a persistent-pool job (inline when there is only
/// one), returning per-part results in part order. The caller helps run
/// queued jobs while it waits; panics propagate with their original
/// payload once the whole batch finished.
pub(crate) fn run_parts<'a, T, R, F>(parts: Vec<iter::Part<'a, T>>, job: F) -> Vec<R>
where
    T: Send + 'a,
    R: Send,
    F: Fn(Box<dyn Iterator<Item = T> + Send + 'a>) -> R + Sync,
{
    if parts.len() <= 1 {
        return parts.into_iter().map(|p| job(p.iter)).collect();
    }
    let n = parts.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let job = &job;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = parts
        .into_iter()
        .zip(slots.iter_mut())
        .map(|(p, slot)| {
            Box::new(move || *slot = Some(job(p.iter))) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool::run_batch(jobs);
    slots
        .into_iter()
        .map(|r| r.expect("pool job filled its result slot"))
        .collect()
}

/// Shared closure handle for adapter parts; avoids requiring `F: Clone`.
pub(crate) type Fun<F> = Arc<F>;

pub(crate) fn share<F>(f: F) -> Fun<F> {
    Arc::new(f)
}

//! Parallel iterator subset.
//!
//! Every pipeline is a tree of adapter structs; a terminal method asks the
//! tree for up to `crate::split_hint` independent [`Part`]s (an ordered
//! sequential iterator plus its global start offset) and drives them as
//! persistent-pool jobs via `crate::run_parts`. The hint splits
//! adaptively — the full ambient budget when thieves could take the parts,
//! sequential when every pool thread is already busy — instead of a fixed
//! chunk count. Sources split by index arithmetic, so no items are
//! materialized before the per-item work runs — except `zip`, which aligns
//! its two sides eagerly.

use crate::{run_parts, share, split_spans};

/// One independently drivable slice of a parallel pipeline.
pub struct Part<'a, T> {
    /// Global index of the part's first item (pre-`filter` numbering).
    pub(crate) offset: usize,
    pub(crate) iter: Box<dyn Iterator<Item = T> + Send + 'a>,
}

impl<'a, T> Part<'a, T> {
    fn new(offset: usize, iter: impl Iterator<Item = T> + Send + 'a) -> Self {
        Part {
            offset,
            iter: Box::new(iter),
        }
    }
}

pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Splits into at most `n` parts, in item order.
    fn parts<'a>(self, n: usize) -> Vec<Part<'a, Self::Item>>
    where
        Self: 'a;

    fn map<F, O>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> O + Send + Sync,
        O: Send,
    {
        Map { inner: self, f }
    }

    fn filter<P>(self, predicate: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter {
            inner: self,
            predicate,
        }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Per-part sequential fold; yields one accumulator per part (combine
    /// with [`ParallelIterator::reduce`], as rayon pipelines do).
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Send + Sync,
        F: Fn(A, Self::Item) -> A + Send + Sync,
    {
        Fold {
            inner: self,
            identity,
            fold_op,
        }
    }

    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Send + Sync,
    {
        let parts = self.parts(crate::split_hint());
        run_parts(parts, |it| it.for_each(&op));
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let parts = self.parts(crate::split_hint());
        let partials = run_parts(parts, |it| it.fold(identity(), &op));
        partials.into_iter().fold(identity(), &op)
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts = self.parts(crate::split_hint());
        run_parts(parts, |it| it.sum::<S>()).into_iter().sum()
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let parts = self.parts(crate::split_hint());
        let partials = run_parts(parts, Iterator::max);
        partials.into_iter().flatten().max()
    }

    fn count(self) -> usize {
        let parts = self.parts(crate::split_hint());
        run_parts(parts, Iterator::count).into_iter().sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let parts = self.parts(crate::split_hint());
        run_parts(parts, |it| it.collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

// ---------------------------------------------------------------- sources

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

pub struct VecParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, T>>
    where
        Self: 'a,
    {
        let spans = split_spans(self.items.len(), n);
        let mut items = self.items;
        let mut out: Vec<Part<'a, T>> = Vec::with_capacity(spans.len());
        // Split back-to-front so each split_off is O(part size).
        for &(start, _end) in spans.iter().rev() {
            let tail = items.split_off(start);
            out.push(Part::new(start, tail.into_iter()));
        }
        out.reverse();
        out
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

pub struct RangeParIter<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn parts<'a>(self, n: usize) -> Vec<Part<'a, $t>>
            where
                Self: 'a,
            {
                let len = (self.end.saturating_sub(self.start)) as usize;
                split_spans(len, n)
                    .into_iter()
                    .map(|(s, e)| {
                        let lo = self.start + s as $t;
                        let hi = self.start + e as $t;
                        Part::new(s, lo..hi)
                    })
                    .collect()
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;

            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter {
                    start: self.start,
                    end: self.end,
                }
            }
        }
    )*};
}
impl_range_source!(u32, u64, usize);

pub struct ParSlice<'data, T: Sync> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, &'data T>>
    where
        Self: 'a,
    {
        split_spans(self.slice.len(), n)
            .into_iter()
            .map(|(s, e)| Part::new(s, self.slice[s..e].iter()))
            .collect()
    }
}

pub struct ParSliceMut<'data, T: Send> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParallelIterator for ParSliceMut<'data, T> {
    type Item = &'data mut T;

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, &'data mut T>>
    where
        Self: 'a,
    {
        let spans = split_spans(self.slice.len(), n);
        let mut rest = self.slice;
        let mut consumed = 0;
        let mut out = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            let (head, tail) = rest.split_at_mut(e - consumed);
            debug_assert_eq!(head.len(), e - s);
            out.push(Part::new(s, head.iter_mut()));
            rest = tail;
            consumed = e;
        }
        out
    }
}

pub struct ParChunks<'data, T: Sync> {
    slice: &'data [T],
    size: usize,
}

impl<'data, T: Sync> ParallelIterator for ParChunks<'data, T> {
    type Item = &'data [T];

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, &'data [T]>>
    where
        Self: 'a,
    {
        let nchunks = self.slice.len().div_ceil(self.size.max(1));
        let size = self.size.max(1);
        split_spans(nchunks, n)
            .into_iter()
            .map(|(s, e)| {
                let lo = s * size;
                let hi = (e * size).min(self.slice.len());
                Part::new(s, self.slice[lo..hi].chunks(size))
            })
            .collect()
    }
}

pub struct ParChunksMut<'data, T: Send> {
    slice: &'data mut [T],
    size: usize,
}

impl<'data, T: Send> ParallelIterator for ParChunksMut<'data, T> {
    type Item = &'data mut [T];

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, &'data mut [T]>>
    where
        Self: 'a,
    {
        let size = self.size.max(1);
        let nchunks = self.slice.len().div_ceil(size);
        let spans = split_spans(nchunks, n);
        let mut rest = self.slice;
        let mut consumed = 0;
        let mut out = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            let hi = (e * size).min(consumed + rest.len());
            let (head, tail) = rest.split_at_mut(hi - consumed);
            out.push(Part::new(s, head.chunks_mut(size)));
            rest = tail;
            consumed = hi;
        }
        out
    }
}

/// `par_iter`/`par_chunks` on shared slices (and anything derefing to one).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParSlice<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `par_iter_mut`/`par_chunks_mut`/`par_sort_unstable` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_sort_unstable_by(self, &T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        crate::sort::par_sort_unstable_by(self, &compare);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        crate::sort::par_sort_unstable_by(self, &|a: &T, b: &T| key(a).cmp(&key(b)));
    }
}

// --------------------------------------------------------------- adapters

pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, F, O> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> O + Send + Sync,
    O: Send,
{
    type Item = O;

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, O>>
    where
        Self: 'a,
    {
        let f = share(self.f);
        self.inner
            .parts(n)
            .into_iter()
            .map(|p| {
                let f = f.clone();
                Part {
                    offset: p.offset,
                    iter: Box::new(p.iter.map(move |x| f(x))),
                }
            })
            .collect()
    }
}

pub struct Filter<I, P> {
    inner: I,
    predicate: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Send + Sync,
{
    type Item = I::Item;

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, I::Item>>
    where
        Self: 'a,
    {
        let p = share(self.predicate);
        self.inner
            .parts(n)
            .into_iter()
            .map(|part| {
                let p = p.clone();
                Part {
                    offset: part.offset,
                    iter: Box::new(part.iter.filter(move |x| p(x))),
                }
            })
            .collect()
    }
}

pub struct Enumerate<I> {
    inner: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: ParallelIterator,
{
    type Item = (usize, I::Item);

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, (usize, I::Item)>>
    where
        Self: 'a,
    {
        self.inner
            .parts(n)
            .into_iter()
            .map(|p| {
                let offset = p.offset;
                Part {
                    offset,
                    iter: Box::new(p.iter.enumerate().map(move |(i, x)| (offset + i, x))),
                }
            })
            .collect()
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, (A::Item, B::Item)>>
    where
        Self: 'a,
    {
        // Materialize both sides (cheap: zipped pipelines carry references)
        // so the pair boundaries align regardless of how each side splits.
        let left: Vec<A::Item> = self.a.parts(1).into_iter().flat_map(|p| p.iter).collect();
        let right: Vec<B::Item> = self.b.parts(1).into_iter().flat_map(|p| p.iter).collect();
        let pairs: Vec<(A::Item, B::Item)> = left.into_iter().zip(right).collect();
        VecParIter { items: pairs }.parts(n)
    }
}

pub struct Fold<I, ID, F> {
    inner: I,
    identity: ID,
    fold_op: F,
}

impl<I, A, ID, F> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Send + Sync,
    F: Fn(A, I::Item) -> A + Send + Sync,
{
    type Item = A;

    fn parts<'a>(self, n: usize) -> Vec<Part<'a, A>>
    where
        Self: 'a,
    {
        let identity = share(self.identity);
        let fold_op = share(self.fold_op);
        self.inner
            .parts(n)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let identity = identity.clone();
                let fold_op = fold_op.clone();
                Part {
                    offset: i,
                    iter: Box::new(std::iter::once_with(move || {
                        p.iter.fold(identity(), |acc, x| fold_op(acc, x))
                    })),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_sum_and_collect() {
        let s: u64 = (0u64..1000).into_par_iter().sum();
        assert_eq!(s, 499_500);
        let v: Vec<u32> = (0u32..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn enumerate_offsets_are_global() {
        let v: Vec<(usize, u32)> = (10u32..30).into_par_iter().enumerate().collect();
        for (i, x) in v {
            assert_eq!(x, 10 + i as u32);
        }
    }

    #[test]
    fn filter_fold_reduce_pipeline() {
        let total = (0u64..10_000)
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .fold(|| 0u64, |a, x| a + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0u64..10_000).filter(|x| x % 3 == 0).sum::<u64>());
    }

    #[test]
    fn slice_iterators() {
        let data: Vec<u64> = (0..257).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 257 * 256 / 2);

        let mut v = vec![1u64; 100];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));

        let sums: Vec<u64> = data.par_chunks(50).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 6);
        assert_eq!(sums.iter().sum::<u64>(), s);
    }

    #[test]
    fn chunks_mut_with_zip() {
        let mut v: Vec<u64> = (0..100).collect();
        let adds: Vec<u64> = (0..10).collect();
        v.par_chunks_mut(10)
            .zip(adds.par_iter())
            .for_each(|(chunk, &a)| {
                for x in chunk {
                    *x += a * 1000;
                }
            });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 + (i as u64 / 10) * 1000);
        }
    }

    #[test]
    fn max_and_count() {
        assert_eq!((0u32..57).into_par_iter().max(), Some(56));
        assert_eq!((0u32..0).into_par_iter().max(), None);
        assert_eq!((0u32..57).into_par_iter().filter(|&x| x < 7).count(), 7);
    }

    #[test]
    fn vec_into_par_preserves_order() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<String> = v.clone().into_par_iter().collect();
        assert_eq!(out, v);
    }

    #[test]
    fn budget_respected() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let n = pool.install(crate::current_num_threads);
        assert_eq!(n, 3);
        assert_eq!(
            pool.install(|| (0u64..100).into_par_iter().sum::<u64>()),
            4950
        );
    }

    #[test]
    fn scope_spawn_joins() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 8);
    }
}

//! Parallel merge sort behind `par_sort_unstable*`.
//!
//! The slice is split into at most `2^⌈log₂ budget⌉` leaf runs, each
//! sorted in-place with `sort_unstable_by`, then merged pairwise up the
//! recursion tree. Each merge writes bitwise copies into a scratch
//! buffer and is itself parallel: the longer run is split at its
//! midpoint, the split key is binary-searched in the shorter run, and
//! the two halves merge concurrently — falling back to a sequential
//! two-finger merge below [`SEQ_CUTOFF`] elements. All forking goes
//! through [`pool::join`], so the work runs on the persistent pool.
//!
//! Splitting is **adaptive**, not fixed: every recursion node re-asks
//! [`pool::split_wanted`] before forking — fork while a thief is idle to
//! take the other half, run sequentially otherwise. The budget-derived
//! level count only caps the depth (bounding the job fan-out), it no
//! longer forces splits nobody would steal.
//!
//! # Panic safety
//!
//! The comparator is caller code and may panic at any point. The scheme
//! stays sound because elements only ever move by *bitwise copy into
//! the scratch buffer*, never out of the slice: until a merge level
//! completes, the slice still owns every element, and the scratch `Vec`
//! keeps `len == 0` forever so it drops nothing. Only after a full
//! merge level finishes (comparator can no longer run) is the merged
//! order copied back into the slice in one `ptr::copy_nonoverlapping`.
//! A panic therefore leaves the slice holding all of its original
//! elements exactly once — possibly partially sorted, never duplicated
//! or dropped.

use crate::pool;
use std::cmp::Ordering;
use std::ptr;

/// Below this many elements sorting (or merging) proceeds sequentially;
/// fork overhead dominates under it.
const SEQ_CUTOFF: usize = 4096;

/// Raw pointer that tasks may carry across threads. Every task touches a
/// disjoint element range, so no synchronization is needed.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// # Safety
    /// `count` must stay within the allocation this pointer derives from.
    unsafe fn add(&self, count: usize) -> SendPtr<T> {
        SendPtr(self.0.add(count))
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        SendPtr(self.0)
    }
}

// SAFETY: a `SendPtr` is only ever handed to the disjoint sub-ranges of
// one `join`/`par_merge` call tree — each closure touches its own half,
// so moving the raw pointer across threads aliases nothing; `T: Send`
// covers the elements themselves.
unsafe impl<T: Send> Send for SendPtr<T> {}

/// Sorts `v` with the ambient parallelism budget. The single entry point
/// for all three `par_sort_unstable*` variants.
pub(crate) fn par_sort_unstable_by<T, F>(v: &mut [T], compare: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let budget = crate::current_num_threads();
    if budget <= 1 || v.len() <= SEQ_CUTOFF {
        v.sort_unstable_by(compare);
        return;
    }
    // Depth so the leaf-run count is the smallest power of two >= budget:
    // one run per worker, ⌈log₂ budget⌉ merge levels.
    let levels = budget.next_power_of_two().trailing_zeros();
    let mut scratch: Vec<T> = Vec::with_capacity(v.len());
    // SAFETY: `scratch` provides raw storage for `v.len()` elements; its
    // `len` stays 0, so it never drops what the merges copy into it.
    sort_rec(v, SendPtr(scratch.as_mut_ptr()), compare, levels);
}

/// Recursive sort of `v`, with `scratch` pointing at a spare region of
/// the same length.
fn sort_rec<T, F>(v: &mut [T], scratch: SendPtr<T>, compare: &F, levels: u32)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if levels == 0 || v.len() <= SEQ_CUTOFF || !pool::split_wanted() {
        v.sort_unstable_by(compare);
        return;
    }
    let mid = v.len() / 2;
    {
        let (lo, hi) = v.split_at_mut(mid);
        let scratch_lo = SendPtr(scratch.0);
        // SAFETY: `mid < v.len()`, within the scratch allocation.
        let scratch_hi = unsafe { scratch.add(mid) };
        pool::join(
            || sort_rec(lo, scratch_lo, compare, levels - 1),
            || sort_rec(hi, scratch_hi, compare, levels - 1),
        );
    }
    // SAFETY: both halves of `v` are sorted and disjoint from the scratch
    // region; the merge writes copies into scratch[0..len], and only once
    // it fully succeeded (no more comparator calls) is the merged order
    // copied back over `v`.
    unsafe {
        par_merge(
            SendPtr(v.as_mut_ptr()),
            mid,
            SendPtr(v.as_mut_ptr().add(mid)),
            v.len() - mid,
            SendPtr(scratch.0),
            compare,
            levels,
        );
        ptr::copy_nonoverlapping(scratch.0, v.as_mut_ptr(), v.len());
    }
}

/// Merges the sorted runs `a[..a_len]` and `b[..b_len]` into
/// `dst[..a_len + b_len]` by bitwise copy, splitting recursively for
/// parallelism.
///
/// # Safety
/// The three regions must be valid and mutually disjoint; `dst` is raw
/// spare capacity (no drops happen through it).
unsafe fn par_merge<T, F>(
    a: SendPtr<T>,
    a_len: usize,
    b: SendPtr<T>,
    b_len: usize,
    dst: SendPtr<T>,
    compare: &F,
    levels: u32,
) where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    if levels == 0 || a_len + b_len <= SEQ_CUTOFF || !pool::split_wanted() {
        seq_merge(a, a_len, b, b_len, dst, compare);
        return;
    }
    // Split the longer run at its midpoint and partition the shorter run
    // around that key, so both sub-merges see elements strictly ordered
    // across the split (ties may land on either side; unstable is fine).
    let (a_mid, b_mid) = if a_len >= b_len {
        let a_mid = a_len / 2;
        (a_mid, lower_bound(&b, b_len, &*a.0.add(a_mid), compare))
    } else {
        let b_mid = b_len / 2;
        (lower_bound(&a, a_len, &*b.0.add(b_mid), compare), b_mid)
    };
    let (a_lo, a_hi) = (SendPtr(a.0), a.add(a_mid));
    let (b_lo, b_hi) = (SendPtr(b.0), b.add(b_mid));
    let dst_lo = SendPtr(dst.0);
    let dst_hi = dst.add(a_mid + b_mid);
    pool::join(
        // SAFETY: the sub-ranges partition the inputs and the output.
        || unsafe { par_merge(a_lo, a_mid, b_lo, b_mid, dst_lo, compare, levels - 1) },
        || unsafe {
            par_merge(
                a_hi,
                a_len - a_mid,
                b_hi,
                b_len - b_mid,
                dst_hi,
                compare,
                levels - 1,
            )
        },
    );
}

/// Sequential two-finger merge by bitwise copies.
///
/// # Safety
/// Same contract as [`par_merge`].
unsafe fn seq_merge<T, F>(
    a: SendPtr<T>,
    a_len: usize,
    b: SendPtr<T>,
    b_len: usize,
    dst: SendPtr<T>,
    compare: &F,
) where
    F: Fn(&T, &T) -> Ordering,
{
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a_len && j < b_len {
        let take_a = compare(&*a.0.add(i), &*b.0.add(j)) != Ordering::Greater;
        let src = if take_a {
            let p = a.0.add(i);
            i += 1;
            p
        } else {
            let p = b.0.add(j);
            j += 1;
            p
        };
        ptr::copy_nonoverlapping(src, dst.0.add(k), 1);
        k += 1;
    }
    if i < a_len {
        ptr::copy_nonoverlapping(a.0.add(i), dst.0.add(k), a_len - i);
    }
    if j < b_len {
        ptr::copy_nonoverlapping(b.0.add(j), dst.0.add(k), b_len - j);
    }
}

/// Index of the first element of `p[..len]` not ordered before `key`.
///
/// # Safety
/// `p[..len]` must be valid, sorted under `compare`.
unsafe fn lower_bound<T, F>(p: &SendPtr<T>, len: usize, key: &T, compare: &F) -> usize
where
    F: Fn(&T, &T) -> Ordering,
{
    let (mut lo, mut hi) = (0, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if compare(&*p.0.add(mid), key) == Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap();
        pool.install(f)
    }

    fn keyed(i: u64) -> u64 {
        i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i >> 7)
    }

    #[test]
    fn sorts_large_random_input_across_budgets() {
        let data: Vec<u64> = (0..100_000).map(keyed).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        for b in [1usize, 2, 3, 4, 8] {
            let mut v = data.clone();
            budget(b, || v.par_sort_unstable());
            assert_eq!(v, expect, "budget {b}");
        }
    }

    #[test]
    fn sorts_with_comparator_and_key() {
        let data: Vec<u64> = (0..50_000).map(keyed).collect();
        let mut by = data.clone();
        budget(4, || by.par_sort_unstable_by(|x, y| y.cmp(x)));
        let mut expect = data.clone();
        expect.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(by, expect);

        let mut by_key = data.clone();
        budget(4, || by_key.par_sort_unstable_by_key(|&x| x % 1000));
        assert!(by_key.windows(2).all(|w| w[0] % 1000 <= w[1] % 1000));
        assert_eq!(by_key.len(), data.len());
    }

    #[test]
    fn sorts_non_copy_types() {
        let data: Vec<String> = (0..20_000)
            .map(|i| format!("{:07}", keyed(i) % 100_000))
            .collect();
        let mut v = data.clone();
        budget(4, || v.par_sort_unstable());
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn small_and_degenerate_inputs() {
        budget(4, || {
            let mut empty: Vec<u64> = Vec::new();
            empty.par_sort_unstable();
            assert!(empty.is_empty());

            let mut one = vec![7u64];
            one.par_sort_unstable();
            assert_eq!(one, vec![7]);

            let mut tiny: Vec<u64> = (0..100).rev().collect();
            tiny.par_sort_unstable();
            assert_eq!(tiny, (0..100).collect::<Vec<u64>>());
        });
    }

    #[test]
    fn comparator_panic_leaves_all_elements_present() {
        // Strings make double-drops observable (heap corruption / ASAN);
        // the panic must propagate and the slice keep every element.
        let mut v: Vec<String> = (0..30_000)
            .map(|i| format!("{:07}", keyed(i) % 50_000))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            budget(4, || {
                v.par_sort_unstable_by(|x, y| {
                    if hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 20_000 {
                        panic!("comparator bomb");
                    }
                    x.cmp(y)
                })
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        v.sort_unstable();
        assert_eq!(v, expect, "no element lost or duplicated");
    }
}

//! Work-stealing scheduler behind every parallel terminal.
//!
//! A lazily-initialized, process-global set of OS workers executes erased
//! closures. Scheduling is the classic Chase–Lev discipline, and since
//! this PR the deques really are lock-free ([`crate::deque`]) — owners
//! never take a lock or CAS except on the one-element race, and thieves
//! synchronize with a single compare-exchange on `top`:
//!
//! * every worker owns a **deque**: it pushes and pops its own jobs at the
//!   bottom (LIFO, so nested fork-join stays depth-first and
//!   stack-bounded) while thieves take from the top (FIFO, so they grab
//!   the oldest — root-most, largest — subtree);
//! * a worker out of local work **steals** from victims chosen by seeded
//!   rotation (a SplitMix-seeded start index per thief, then a cyclic
//!   scan), and only then falls back to the shared **injector**;
//! * the injector receives only **external submissions** — batches started
//!   from threads outside the pool (the process main thread, tests) — so
//!   the one shared queue is no longer on the hot path of nested
//!   parallelism, which is where the CD/FD phases' skewed per-vertex
//!   workloads generate most of their jobs.
//!
//! Two invariants make borrowed (non-`'static`) jobs and nested
//! parallelism sound, unchanged from the single-queue design:
//!
//! 1. **Blocking bounds borrows.** `run_batch` and `scope` do not
//!    return — not even by unwinding — until their latch reports every
//!    submitted job finished, so lifetime-erased closures never outlive
//!    the data they borrow.
//! 2. **Every waiter is a worker.** While a latch is open, the waiting
//!    thread runs jobs itself (`help_until_done`): its own deque first
//!    (its children), then steals, then the injector. A fixed-size pool
//!    whose blocked callers also drain queues cannot deadlock on nested
//!    batches; parking uses a deliberately long **1-second backstop
//!    timeout** as a lost-wakeup safety net on top of the condvar
//!    protocol, and a timed-out worker re-checks `pending == 0` and goes
//!    straight back to sleep instead of running a steal scan — an idle
//!    pool therefore burns no steal probes and `steals_attempted` stays
//!    flat through long sequential phases (each backstop firing is
//!    counted in `idle_timeouts`). Parked waiters count as *idle thieves*
//!    for the adaptive-split heuristic (`split_wanted`) — they poll for
//!    work every 200µs, so a split made on their behalf is picked up
//!    almost immediately.
//!
//! The pool grows monotonically: a batch submitted under parallelism
//! budget `b` ensures `b − 1` workers exist (its caller is the `b`-th),
//! capped at `MAX_WORKERS`. Concurrency is still capped per batch by
//! the number of jobs the budget allowed the terminal to create, so
//! nested `ThreadPool::install` budgets keep their meaning even though
//! all pools share one worker set.
//!
//! Every scheduling decision is counted: [`scheduler_stats`] returns a
//! [`SchedulerStats`] snapshot (jobs submitted, tasks executed per worker
//! and by helping callers, steal attempts/successes, injector traffic)
//! that the `repro` harness surfaces as a machine-checkable
//! `SchedulerReport` and CI gates on.

use crate::deque::{Deque, Steal};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard ceiling on pool workers; budgets beyond it still work, with the
/// excess jobs queueing.
const MAX_WORKERS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One worker's scheduling state. The owning thread operates on the
/// bottom of `deque` (lock-free push/pop), thieves on the top (CAS).
struct Worker {
    deque: Deque<Job>,
    /// Jobs this worker finished executing (wherever they were queued).
    executed: AtomicU64,
}

struct PoolState {
    /// External submissions only; workers and helpers drain it after their
    /// deques run dry.
    injector: Mutex<VecDeque<Job>>,
    /// Worker slots, all `MAX_WORKERS` pre-allocated at pool init so the
    /// hot paths (own-deque pop, steal scans, executed attribution) index
    /// a fixed array with **no lock at all** — `ensure_workers` growth
    /// spawns OS threads but never moves this storage, so it cannot stall
    /// a scan. Only slots `< spawned` have a live owner thread; the rest
    /// hold empty deques that scans never visit.
    workers: Vec<Worker>,
    /// Serializes OS-thread spawning in `ensure_workers` (cold path).
    growth: Mutex<()>,
    /// Pairs with `signal`: idle workers re-check `pending` under this
    /// lock before parking, and submitters notify under it, so a wakeup
    /// cannot slip between the check and the wait.
    idle_lock: Mutex<()>,
    signal: Condvar,
    /// Jobs queued (injector or any deque) but not yet checked out.
    pending: AtomicUsize,
    /// Threads currently parked and hungry for work: idle workers plus
    /// callers parked in [`help_until_done`]. The adaptive-split gate
    /// reads this — a split only pays when somebody could steal it.
    idle_threads: AtomicUsize,
    /// Total OS workers ever spawned (monotonic; `Release` after each
    /// spawn, `Acquire` by scans and stats).
    spawned: AtomicUsize,
    // ---- scheduler telemetry (all monotonic, relaxed) ----
    jobs_submitted: AtomicU64,
    helper_executed: AtomicU64,
    injector_pushes: AtomicU64,
    injector_pops: AtomicU64,
    steals_attempted: AtomicU64,
    steals_succeeded: AtomicU64,
    /// Times an idle worker's 1 s parking backstop fired with no work
    /// pending (it re-parked without scanning). Machine- and load-
    /// dependent, so `check-threads` scrubs it with the rest of the
    /// scheduler section.
    idle_timeouts: AtomicU64,
    /// Seeds helper threads' victim rotation (workers seed from their id).
    helper_seed: AtomicU64,
}

thread_local! {
    /// Worker id of the current thread; `usize::MAX` off-pool.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// SplitMix state for this thread's steal-victim rotation.
    static STEAL_SEED: Cell<u64> = const { Cell::new(0) };
}

fn pool() -> &'static PoolState {
    static POOL: OnceLock<PoolState> = OnceLock::new();
    POOL.get_or_init(|| PoolState {
        injector: Mutex::new(VecDeque::new()),
        workers: (0..MAX_WORKERS)
            .map(|_| Worker {
                deque: Deque::new(),
                executed: AtomicU64::new(0),
            })
            .collect(),
        growth: Mutex::new(()),
        idle_lock: Mutex::new(()),
        signal: Condvar::new(),
        pending: AtomicUsize::new(0),
        idle_threads: AtomicUsize::new(0),
        spawned: AtomicUsize::new(0),
        jobs_submitted: AtomicU64::new(0),
        helper_executed: AtomicU64::new(0),
        injector_pushes: AtomicU64::new(0),
        injector_pops: AtomicU64::new(0),
        steals_attempted: AtomicU64::new(0),
        steals_succeeded: AtomicU64::new(0),
        idle_timeouts: AtomicU64::new(0),
        helper_seed: AtomicU64::new(0),
    })
}

/// Total OS worker threads the pool has ever created. Shim-only
/// observability hook: after a warm-up at the largest budget a process
/// uses, this value must not grow — parallel terminals reuse workers.
pub fn total_workers_spawned() -> usize {
    // ordering: advisory observability read — no dependent data access.
    pool().spawned.load(Ordering::Relaxed)
}

/// Point-in-time snapshot of the scheduler's counters.
///
/// All counters are cumulative over the process lifetime and monotonic.
/// At any quiescent point (no batch in flight) `tasks_executed ==
/// jobs_submitted`, and `tasks_executed` always equals `helper_executed +
/// Σ per_worker_executed` — the snapshot computes it that way, so the
/// attribution is complete by construction and the root test suite pins
/// the submitted/executed equality down with a proptest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerStats {
    /// OS workers ever spawned (same as [`total_workers_spawned`]).
    pub workers_spawned: usize,
    /// Jobs handed to the scheduler (injector or a worker deque). Inline
    /// fast paths — single-job batches and whole batches at budget 1 —
    /// never enter a queue and are not counted.
    pub jobs_submitted: u64,
    /// Jobs finished executing: `helper_executed + Σ per_worker_executed`.
    pub tasks_executed: u64,
    /// Jobs executed by non-worker threads helping while they wait.
    pub helper_executed: u64,
    /// Jobs executed by each worker, indexed by worker id.
    pub per_worker_executed: Vec<u64>,
    /// External submissions pushed to the shared injector.
    pub injector_pushes: u64,
    /// Jobs checked out of the injector (by workers or helpers).
    pub injector_pops: u64,
    /// Victim deques probed during steal scans.
    pub steals_attempted: u64,
    /// Jobs actually taken from another worker's deque.
    pub steals_succeeded: u64,
    /// Idle-parking 1 s backstop timeouts that found no pending work and
    /// re-parked. Distinguishes timeout wakeups from real notifications;
    /// wall-clock-dependent, so report scrubbing must hide it from
    /// cross-machine diffs (`check-threads` nulls the whole scheduler
    /// section).
    pub idle_timeouts: u64,
}

/// Snapshots the scheduler's telemetry counters. Cheap (a handful of
/// relaxed loads over a fixed worker array — no locks); safe to call at
/// any time.
pub fn scheduler_stats() -> SchedulerStats {
    let p = pool();
    // ordering: Acquire — `spawned` is published with `Release` after
    // each spawn, so slots `< n` are fully initialized owners; the
    // snapshot length can trail a concurrent grow by design (the old
    // registry lock had the same property — a snapshot is always of
    // *some* recent instant).
    let n = p.spawned.load(Ordering::Acquire);
    // ordering: every counter below is an independent monotonic tally —
    // Relaxed loads; the snapshot promises no cross-counter consistency.
    let per_worker_executed: Vec<u64> = p.workers[..n]
        .iter()
        .map(|w| w.executed.load(Ordering::Relaxed))
        .collect();
    let helper_executed = p.helper_executed.load(Ordering::Relaxed); // ordering: Relaxed tally, as above
    SchedulerStats {
        // ordering: Relaxed tally reads, as above — advisory telemetry.
        workers_spawned: n,
        jobs_submitted: p.jobs_submitted.load(Ordering::Relaxed),
        tasks_executed: helper_executed + per_worker_executed.iter().sum::<u64>(),
        helper_executed,
        per_worker_executed,
        injector_pushes: p.injector_pushes.load(Ordering::Relaxed),
        injector_pops: p.injector_pops.load(Ordering::Relaxed),
        steals_attempted: p.steals_attempted.load(Ordering::Relaxed),
        steals_succeeded: p.steals_succeeded.load(Ordering::Relaxed),
        idle_timeouts: p.idle_timeouts.load(Ordering::Relaxed),
    }
}

/// Worker id of the current thread, if it is a pool worker.
fn current_worker() -> Option<usize> {
    let i = WORKER_INDEX.with(Cell::get);
    (i != usize::MAX).then_some(i)
}

/// True on pool worker threads (used by the adaptive-split heuristic:
/// external callers always split, workers split only while thieves idle).
pub(crate) fn on_worker_thread() -> bool {
    current_worker().is_some()
}

/// True while at least one thread is parked hungry for work — an idle
/// worker or a caller polling inside [`help_until_done`]. A split made
/// now has a thief ready to take it.
pub(crate) fn has_idle_threads() -> bool {
    // ordering: heuristic gate — a stale read only mis-tunes splitting,
    // never correctness, so Relaxed suffices.
    pool().idle_threads.load(Ordering::Relaxed) > 0
}

/// The adaptive-split gate: should a parallel construct fork here instead
/// of running sequentially? Off-pool callers always fork (their jobs feed
/// the injector, which workers and the caller itself drain); workers fork
/// only while some thief is idle — when every thread is busy, a fork
/// would only queue boxing/latch overhead that the owner ends up running
/// itself.
pub(crate) fn split_wanted() -> bool {
    !on_worker_thread() || has_idle_threads()
}

/// SplitMix64 step: advances the state and returns a well-mixed value.
fn splitmix_next(state: &Cell<u64>) -> u64 {
    let s = state.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
    state.set(s);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// This thread's steal rotation value. Workers are seeded from their id
/// (set in [`worker_loop`]); helper threads lazily seed from a global
/// counter so concurrent helpers start their scans at different victims.
fn steal_rotation() -> u64 {
    STEAL_SEED.with(|seed| {
        if seed.get() == 0 {
            // ordering: Relaxed counter — only uniqueness of the ordinal
            // matters, which the atomic RMW guarantees at any ordering.
            let ordinal = pool().helper_seed.fetch_add(1, Ordering::Relaxed);
            seed.set((MAX_WORKERS as u64 + 1 + ordinal) << 1);
        }
        splitmix_next(seed)
    })
}

/// Grows the worker set to at least `target` threads (capped). Cold
/// path: spawning is serialized by `growth`, but the worker array itself
/// is pre-allocated and never moves, so concurrent scans and pops are
/// never stalled by growth.
fn ensure_workers(target: usize) {
    let p = pool();
    let target = target.min(MAX_WORKERS);
    // ordering: Acquire pairs with the Release store below so a caller
    // that sees `spawned >= target` also sees those workers' slots.
    if p.spawned.load(Ordering::Acquire) >= target {
        return;
    }
    let _guard = p.growth.lock().expect("pool growth lock poisoned");
    // ordering: Acquire re-check under the growth lock (same pairing).
    while p.spawned.load(Ordering::Acquire) < target {
        // ordering: Relaxed re-read — we hold the growth lock, the only
        // place `spawned` is written.
        let index = p.spawned.load(Ordering::Relaxed);
        std::thread::Builder::new()
            // Named so panics and debugger output identify the pool.
            .name(format!("receipt-worker-{index}"))
            // Nested fork-join executes depth-first on worker stacks;
            // match the main thread's default so debug builds with fat
            // frames don't overflow.
            .stack_size(8 << 20)
            .spawn(move || worker_loop(index))
            .expect("failed to spawn pool worker");
        // ordering: Release publishes the spawned worker's slot to the
        // Acquire readers above and in `try_steal`/`scheduler_stats`.
        p.spawned.store(index + 1, Ordering::Release);
    }
}

fn worker_loop(index: usize) {
    WORKER_INDEX.with(|c| c.set(index));
    // Seeded rotation: each worker starts its victim scans from a
    // different, deterministic sequence of indices.
    STEAL_SEED.with(|c| c.set((index as u64 + 1) << 1));
    let p = pool();
    loop {
        // Jobs are wrapped (catch_unwind + latch) before queueing, so
        // they cannot unwind through the worker loop.
        match find_job(p, /* lifo_injector = */ false) {
            Some(job) => job(),
            None => park_idle(p),
        }
    }
}

/// Parks an out-of-work worker until a submission arrives. The
/// `pending`-under-lock check makes the condvar protocol lost-wakeup-free
/// (submitters bump `pending` with `SeqCst` before reading `idle_threads`,
/// and notify under the same lock this check holds, so either the worker
/// sees the new `pending` or the submitter sees the parked worker). The
/// 1-second timeout is a defense-in-depth backstop only, and deliberately
/// long: a short poll would have every idle worker burning steal scans
/// (CAS traffic, inflated `steals_attempted`) for the whole process
/// lifetime — background noise this benchmarking harness cannot afford
/// during its timed sequential phases. When the backstop does fire, the
/// loop re-checks `pending` and goes straight back to sleep if there is
/// still nothing to do — a timeout wakeup never escalates into a steal
/// scan, so an idle pool's `steals_attempted` stays flat; each such
/// firing is counted in `idle_timeouts` so telemetry can tell backstop
/// churn from real notifications.
fn park_idle(p: &PoolState) {
    // ordering: SeqCst — the idle count and `pending` form a Dekker-style
    // pair with submitters (see the doc comment above): both sides'
    // writes and reads must sit in one total order or a submitter could
    // miss the parked worker while the worker misses the new job.
    p.idle_threads.fetch_add(1, Ordering::SeqCst);
    {
        let mut guard = p.idle_lock.lock().expect("pool idle lock poisoned");
        // ordering: SeqCst read of the Dekker pair (see above).
        while p.pending.load(Ordering::SeqCst) == 0 {
            let (g, timeout) = p
                .signal
                .wait_timeout(guard, Duration::from_secs(1))
                .expect("pool idle lock poisoned");
            guard = g;
            if timeout.timed_out() {
                // ordering: Relaxed telemetry tally.
                p.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            } else {
                // A real notification: leave even if `pending` was
                // already consumed by someone faster — one full scan per
                // notify is the pre-existing (and desired) behavior.
                break;
            }
        }
    }
    // ordering: SeqCst — leave the Dekker pair the way we entered it.
    p.idle_threads.fetch_sub(1, Ordering::SeqCst);
}

/// Checks a job out of the scheduler, in work-stealing order: own deque
/// from the bottom (LIFO — depth-first on own children), then steal from
/// victims' tops (FIFO — oldest, largest subtrees), then the injector.
/// `lifo_injector` pops the injector from the back instead of the front:
/// helpers on external threads want their own most recent submissions
/// (their batch's children) first, workers want global FIFO fairness.
fn find_job(p: &PoolState, lifo_injector: bool) -> Option<Job> {
    if let Some(index) = current_worker() {
        // SAFETY: `index` is this thread's own worker id (thread-local),
        // so this thread is deque `index`'s unique owner. No lock is
        // taken — a concurrent `ensure_workers` growth spawns threads
        // but never touches existing slots.
        let own = unsafe { p.workers[index].deque.pop() };
        if let Some(job) = own {
            // ordering: SeqCst half of the Dekker pair with `park_idle`
            // (see its doc comment) — a submitter and a parking worker
            // must agree on whether this job is still pending.
            p.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
    }
    if let Some(job) = try_steal(p) {
        return Some(job);
    }
    let from_injector = {
        let mut injector = p.injector.lock().expect("pool injector poisoned");
        if lifo_injector {
            injector.pop_back()
        } else {
            injector.pop_front()
        }
    };
    if let Some(job) = from_injector {
        // ordering: SeqCst Dekker pair with `park_idle`, as above.
        p.pending.fetch_sub(1, Ordering::SeqCst);
        // ordering: Relaxed telemetry tally.
        p.injector_pops.fetch_add(1, Ordering::Relaxed);
        return Some(job);
    }
    None
}

/// One steal scan: a seeded-rotation starting victim, then a full cyclic
/// pass over the live worker slots, taking the first non-empty deque's
/// top. Entirely lock-free: the pass reads `spawned` once (`Acquire`) and
/// indexes the fixed worker array, so a concurrent `ensure_workers`
/// growth can never stall it (it just misses workers spawned mid-scan —
/// the next scan sees them). A `Steal::Retry` (lost CAS race) re-probes
/// the same victim: losing the race means someone else made progress, so
/// the loop cannot spin forever; one `steals_attempted` is charged per
/// victim probed, as before, keeping the counter's meaning stable across
/// the mutex→Chase–Lev swap.
fn try_steal(p: &PoolState) -> Option<Job> {
    // ordering: Acquire pairs with the Release store in `ensure_workers`
    // so every slot below index `n` is fully initialized before we index
    // into it.
    let n = p.spawned.load(Ordering::Acquire);
    if n == 0 {
        return None;
    }
    let me = current_worker();
    let start = (steal_rotation() % n as u64) as usize;
    for offset in 0..n {
        let victim = (start + offset) % n;
        if Some(victim) == me {
            continue;
        }
        // ordering: Relaxed telemetry tally.
        p.steals_attempted.fetch_add(1, Ordering::Relaxed);
        loop {
            match p.workers[victim].deque.steal() {
                Steal::Success(job) => {
                    // ordering: SeqCst Dekker pair with `park_idle` (see
                    // its doc comment).
                    p.pending.fetch_sub(1, Ordering::SeqCst);
                    // ordering: Relaxed telemetry tally.
                    p.steals_succeeded.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
                Steal::Retry => std::hint::spin_loop(),
                Steal::Empty => break,
            }
        }
    }
    None
}

/// Attributes one finished job to its executor (called by the wrapper in
/// [`submit`] right before the latch completes, so latch waiters observe
/// settled counters).
fn note_executed(p: &PoolState) {
    match current_worker() {
        Some(index) => {
            // ordering: Relaxed telemetry tally; `scheduler_stats` reads
            // it after an Acquire on `spawned`, which is enough for the
            // monotone properties the tests assert.
            p.workers[index].executed.fetch_add(1, Ordering::Relaxed);
        }
        None => {
            // ordering: Relaxed telemetry tally, as above.
            p.helper_executed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Completion latch for one batch or scope: a pending-job count, the
/// first captured panic payload, and a dedicated condvar so completion
/// wakes exactly this latch's waiters — not every parked pool worker.
pub(crate) struct Latch {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done_lock: Mutex<()>,
    done_signal: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Arc<Latch> {
        Arc::new(Latch {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_signal: Condvar::new(),
        })
    }

    pub(crate) fn add(&self, n: usize) {
        // ordering: Release pairs with the Acquire in `done` — a waiter
        // that still sees a nonzero count keeps helping; one that sees
        // zero must also see every effect of the jobs it covered.
        self.pending.fetch_add(n, Ordering::Release);
    }

    pub(crate) fn done(&self) -> bool {
        // ordering: Acquire pairs with the AcqRel `complete_one` so a
        // waiter that observes zero also observes every completed job's
        // writes (results, panic payloads).
        self.pending.load(Ordering::Acquire) == 0
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("latch panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().expect("latch panic slot poisoned").take()
    }

    fn complete_one(&self) {
        // ordering: AcqRel — Release publishes this job's effects to the
        // waiter that observes the decrement; Acquire chains the previous
        // completions so the final decrement carries all of them.
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Taking `done_lock` orders this notify after any waiter's
            // done-check, so the wakeup cannot be lost; only this latch's
            // waiters wake, not the whole worker pool.
            let _guard = self.done_lock.lock().expect("latch done lock poisoned");
            self.done_signal.notify_all();
        }
    }
}

/// Runs queued jobs while waiting for `latch` to complete. This is the
/// "every waiter is a worker" rule: a thread blocked on a batch drains
/// work (its own sub-jobs or anyone else's) instead of idling.
///
/// Workers help from their own deque's bottom first (their most recently
/// pushed jobs are the waiting batch's own children, so nested fork-join
/// executes depth-first on the helper's stack — stack growth tracks the
/// algorithm's recursion depth, not the queue length), then steal, then
/// take the injector. External helpers pop the injector from the back for
/// the same depth-first reason — their nested submissions live there.
pub(crate) fn help_until_done(latch: &Latch) {
    let p = pool();
    let lifo_injector = !on_worker_thread();
    while !latch.done() {
        match find_job(p, lifo_injector) {
            Some(job) => job(),
            None => {
                // Park on the latch's own condvar: completion wakes us
                // directly; jobs pushed meanwhile are consumed by the
                // workers (woken per push), with the timeout as the
                // helper's polling backstop for both. While parked we
                // count as an idle thief — the 200µs poll keeps splits
                // made on our behalf from going stale.
                // ordering: SeqCst — joins the Dekker pair in `park_idle`
                // (see its doc comment) while we are parked here.
                p.idle_threads.fetch_add(1, Ordering::SeqCst);
                {
                    let guard = latch.done_lock.lock().expect("latch done lock poisoned");
                    if !latch.done() {
                        let _ = latch
                            .done_signal
                            .wait_timeout(guard, Duration::from_micros(200))
                            .expect("latch done lock poisoned");
                    }
                }
                // ordering: SeqCst — leave the Dekker pair as entered.
                p.idle_threads.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Erases a borrowed job's lifetime so it can sit in the `'static` queue.
///
/// # Safety
/// The caller must not return (including by unwinding) until the job has
/// finished executing — in practice, by waiting on the latch the wrapped
/// job reports to.
unsafe fn erase_lifetime<'a>(
    job: Box<dyn FnOnce() + Send + 'a>,
) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute(job)
}

/// Wraps a borrowed job with the submitter's budget, panic capture, and
/// latch completion, then queues it: on the submitting worker's own deque
/// (bottom, lock-free), or on the shared injector for external
/// submitters.
///
/// # Safety
/// See [`erase_lifetime`]: the caller must block on `latch` before its
/// borrows expire. `latch.add(1)` must have been counted already or be
/// counted here; this function counts it.
pub(crate) unsafe fn submit<'a>(
    latch: &Arc<Latch>,
    budget: usize,
    job: Box<dyn FnOnce() + Send + 'a>,
) {
    latch.add(1);
    let job = erase_lifetime(job);
    let latch = Arc::clone(latch);
    let wrapped: Job = Box::new(move || {
        let _guard = crate::BudgetGuard::set(budget);
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(job)) {
            latch.record_panic(payload);
        }
        note_executed(pool());
        latch.complete_one();
    });
    ensure_workers(budget.saturating_sub(1));
    let p = pool();
    // ordering: Relaxed telemetry tally.
    p.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    // ordering: SeqCst submitter half of the Dekker pair with `park_idle`
    // (see its doc comment) — the increment must be visible to any worker
    // that parks after this point.
    p.pending.fetch_add(1, Ordering::SeqCst);
    match current_worker() {
        Some(index) => {
            // SAFETY: `index` is this thread's own worker id, so this
            // thread is deque `index`'s unique owner (the only thread
            // that ever pushes or pops it).
            unsafe { p.workers[index].deque.push(wrapped) };
        }
        None => {
            // ordering: Relaxed telemetry tally.
            p.injector_pushes.fetch_add(1, Ordering::Relaxed);
            p.injector
                .lock()
                .expect("pool injector poisoned")
                .push_back(wrapped);
        }
    }
    // One job needs one runner: notify_one avoids waking every parked
    // worker per push (thundering herd). Notifying under `idle_lock`
    // orders the wakeup after any worker's pending-check, so it cannot be
    // lost; when nobody is parked the notify (and its lock) is skipped —
    // busy workers find the job on their next scan, and the submitting
    // batch's owner polls on a timeout in `help_until_done` regardless.
    // ordering: SeqCst submitter read of the Dekker pair — total order
    // with the worker's idle fetch_add/pending load in `park_idle` rules
    // out both sides missing each other.
    if p.idle_threads.load(Ordering::SeqCst) > 0 {
        let _guard = p.idle_lock.lock().expect("pool idle lock poisoned");
        p.signal.notify_one();
    }
}

/// Executes every job on the pool, the caller included, and returns once
/// all have finished. The first panic among the jobs is re-raised here
/// (after the whole batch completed, so borrows stay sound).
///
/// At budget 1 (or with ≤ 1 job) the batch runs inline on the caller with
/// zero queue traffic — the single-thread fast path CI's `t=1` matrix leg
/// pins down by asserting zero steals — while keeping batch semantics:
/// every job runs even if an earlier one panicked.
pub(crate) fn run_batch<'a>(jobs: Vec<Box<dyn FnOnce() + Send + 'a>>) {
    let budget = crate::current_num_threads();
    if jobs.len() <= 1 || budget <= 1 {
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for job in jobs {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(job)) {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        return;
    }
    let latch = Latch::new();
    let mut jobs = jobs.into_iter();
    let first = jobs.next().expect("len checked above");
    for job in jobs {
        // SAFETY: `help_until_done` below blocks until the latch counts
        // every job complete, bounding the erased lifetimes.
        unsafe { submit(&latch, budget, job) };
    }
    // The caller runs the first job itself — halving queue traffic for
    // the ubiquitous 2-job `join` — then helps with the rest.
    // (No budget guard needed: `budget` is the caller's ambient value.)
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(first)) {
        latch.record_panic(payload);
    }
    help_until_done(&latch);
    if let Some(payload) = latch.take_panic() {
        panic::resume_unwind(payload);
    }
}

/// Runs both closures, potentially in parallel, and returns their
/// results — the classic fork-join primitive, mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    run_batch(vec![
        Box::new(|| ra = Some(a())),
        Box::new(|| rb = Some(b())),
    ]);
    (
        ra.expect("join arm a completed"),
        rb.expect("join arm b completed"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn join_borrows_stack_data() {
        let data: Vec<u64> = (0..10_000).collect();
        let (lo, hi) = data.split_at(5_000);
        let (a, b) = join(|| lo.iter().sum::<u64>(), || hi.iter().sum::<u64>());
        assert_eq!(a + b, data.iter().sum::<u64>());
    }

    #[test]
    fn batch_panic_propagates_after_completion() {
        let finished = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 2 {
                            panic!("boom {i}");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            run_batch(jobs);
        }));
        assert!(caught.is_err(), "panic must propagate");
        // Every non-panicking job still ran to completion before the
        // panic was re-raised.
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn workers_are_reused_across_batches() {
        // Warm up at a budget at least as large as any other test in this
        // binary uses (including the ambient default), so concurrent tests
        // cannot legitimately grow the pool while we measure.
        let warm = crate::ThreadPoolBuilder::new()
            .num_threads(crate::current_num_threads().max(8))
            .build()
            .unwrap();
        warm.install(|| join(|| (), || ()));
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let spawned = total_workers_spawned();
        for _ in 0..64 {
            pool.install(|| join(|| (), || ()));
        }
        assert_eq!(
            total_workers_spawned(),
            spawned,
            "batches must reuse pooled workers, not spawn fresh threads"
        );
    }

    #[test]
    fn scheduler_stats_are_consistent() {
        // Other tests in this binary run concurrently, so only monotone /
        // invariant properties are asserted here; the root test suite
        // (tests/pool_sort.rs) serializes its tests and pins exact counts.
        let before = scheduler_stats();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let n = 16u64;
        pool.install(|| {
            crate::scope(|s| {
                for _ in 0..n {
                    s.spawn(|_| {
                        std::hint::black_box(0u64);
                    });
                }
            })
        });
        let after = scheduler_stats();
        assert!(after.jobs_submitted >= before.jobs_submitted + n);
        assert!(after.tasks_executed >= before.tasks_executed + n);
        // Executed jobs were submitted first; sampling anywhere observes
        // executed <= submitted.
        assert!(after.tasks_executed <= after.jobs_submitted);
        assert!(after.steals_succeeded <= after.steals_attempted);
        assert_eq!(after.per_worker_executed.len(), after.workers_spawned);
        assert_eq!(
            after.tasks_executed,
            after.helper_executed + after.per_worker_executed.iter().sum::<u64>()
        );
    }

    #[test]
    fn worker_threads_are_named() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let names = Mutex::new(Vec::<String>::new());
        // Retry a few rounds: tiny jobs can all be drained by the helping
        // caller before a worker wakes, so keep submitting until a worker
        // demonstrably ran one.
        for _ in 0..50 {
            pool.install(|| {
                crate::scope(|s| {
                    for _ in 0..8 {
                        s.spawn(|_| {
                            std::thread::sleep(Duration::from_millis(1));
                            if let Some(name) = std::thread::current().name() {
                                names.lock().unwrap().push(name.to_string());
                            }
                        });
                    }
                })
            });
            let names = names.lock().unwrap();
            if names.iter().any(|n| n.starts_with("receipt-worker-")) {
                return;
            }
        }
        panic!(
            "no job ever ran on a receipt-worker-named thread; saw {:?}",
            names.lock().unwrap()
        );
    }
}

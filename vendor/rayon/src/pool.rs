//! Persistent worker pool behind every parallel terminal.
//!
//! A lazily-initialized, process-global set of OS workers pulls erased
//! closures from a shared injector queue. Parallel terminals, `scope`
//! spawns, and the sort's `join` all submit batches here instead of
//! spawning scoped threads per call, so threads are reused across
//! terminals (see [`total_workers_spawned`], which the regression tests
//! pin down).
//!
//! Two invariants make borrowed (non-`'static`) jobs and nested
//! parallelism sound:
//!
//! 1. **Blocking bounds borrows.** [`run_batch`] and `scope` do not
//!    return — not even by unwinding — until their latch reports every
//!    submitted job finished, so lifetime-erased closures never outlive
//!    the data they borrow.
//! 2. **Every waiter is a worker.** While a latch is open, the waiting
//!    thread runs queued jobs itself ([`help_until_done`]). A fixed-size
//!    pool whose blocked callers also drain the queue cannot deadlock on
//!    nested batches; parking uses a short timeout as a lost-wakeup
//!    safety net on top of the condvar protocol.
//!
//! The pool grows monotonically: a batch submitted under parallelism
//! budget `b` ensures `b − 1` workers exist (its caller is the `b`-th),
//! capped at [`MAX_WORKERS`]. Concurrency is still capped per batch by
//! the number of jobs the budget allowed the terminal to create, so
//! nested `ThreadPool::install` budgets keep their meaning even though
//! all pools share one worker set.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard ceiling on pool workers; budgets beyond it still work, with the
/// excess jobs queueing.
const MAX_WORKERS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    /// Signaled when a job is pushed or a latch completes.
    signal: Condvar,
    /// Total OS workers ever spawned (monotonic).
    spawned: AtomicUsize,
}

fn pool() -> &'static PoolState {
    static POOL: OnceLock<PoolState> = OnceLock::new();
    POOL.get_or_init(|| PoolState {
        queue: Mutex::new(VecDeque::new()),
        signal: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Total OS worker threads the pool has ever created. Shim-only
/// observability hook: after a warm-up at the largest budget a process
/// uses, this value must not grow — parallel terminals reuse workers.
pub fn total_workers_spawned() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

/// Grows the worker set to at least `target` threads (capped).
fn ensure_workers(target: usize) {
    let p = pool();
    let target = target.min(MAX_WORKERS);
    loop {
        let cur = p.spawned.load(Ordering::Relaxed);
        if cur >= target {
            return;
        }
        if p.spawned
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{cur}"))
                // Nested fork-join executes depth-first on worker stacks;
                // match the main thread's default so debug builds with fat
                // frames don't overflow.
                .stack_size(8 << 20)
                .spawn(worker_loop)
                .expect("failed to spawn pool worker");
        }
    }
}

fn worker_loop() {
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = p.signal.wait(q).expect("pool queue poisoned");
            }
        };
        // Jobs are wrapped (catch_unwind + latch) before queueing, so
        // they cannot unwind through the worker loop.
        job();
    }
}

/// Completion latch for one batch or scope: a pending-job count, the
/// first captured panic payload, and a dedicated condvar so completion
/// wakes exactly this latch's waiters — not every parked pool worker.
pub(crate) struct Latch {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done_lock: Mutex<()>,
    done_signal: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Arc<Latch> {
        Arc::new(Latch {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_signal: Condvar::new(),
        })
    }

    pub(crate) fn add(&self, n: usize) {
        self.pending.fetch_add(n, Ordering::Release);
    }

    pub(crate) fn done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("latch panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().expect("latch panic slot poisoned").take()
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Taking `done_lock` orders this notify after any waiter's
            // done-check, so the wakeup cannot be lost; only this latch's
            // waiters wake, not the whole worker pool.
            let _guard = self.done_lock.lock().expect("latch done lock poisoned");
            self.done_signal.notify_all();
        }
    }
}

/// Runs queued jobs while waiting for `latch` to complete. This is the
/// "every waiter is a worker" rule: a thread blocked on a batch drains
/// the queue (its own sub-jobs or anyone else's) instead of idling.
///
/// Helpers pop from the **back** of the queue (LIFO) while idle workers
/// pop from the front: the most recently pushed jobs are the waiting
/// batch's own children, so a nested fork-join executes depth-first on
/// the helper's stack — stack growth tracks the algorithm's recursion
/// depth, not the queue length. (FIFO helping would pull sibling-subtree
/// roots onto an already-deep stack and overflow on nested `join`s.)
pub(crate) fn help_until_done(latch: &Latch) {
    let p = pool();
    while !latch.done() {
        let job = p.queue.lock().expect("pool queue poisoned").pop_back();
        match job {
            Some(job) => job(),
            None => {
                // Park on the latch's own condvar: completion wakes us
                // directly; jobs pushed meanwhile are consumed by the
                // workers (woken per push), with the timeout as the
                // helper's polling backstop for both.
                let guard = latch.done_lock.lock().expect("latch done lock poisoned");
                if latch.done() {
                    return;
                }
                let _ = latch
                    .done_signal
                    .wait_timeout(guard, Duration::from_micros(200))
                    .expect("latch done lock poisoned");
            }
        }
    }
}

/// Erases a borrowed job's lifetime so it can sit in the `'static` queue.
///
/// # Safety
/// The caller must not return (including by unwinding) until the job has
/// finished executing — in practice, by waiting on the latch the wrapped
/// job reports to.
unsafe fn erase_lifetime<'a>(
    job: Box<dyn FnOnce() + Send + 'a>,
) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute(job)
}

/// Wraps a borrowed job with the submitter's budget, panic capture, and
/// latch completion, then queues it.
///
/// # Safety
/// See [`erase_lifetime`]: the caller must block on `latch` before its
/// borrows expire. `latch.add(1)` must have been counted already or be
/// counted here; this function counts it.
pub(crate) unsafe fn submit<'a>(
    latch: &Arc<Latch>,
    budget: usize,
    job: Box<dyn FnOnce() + Send + 'a>,
) {
    latch.add(1);
    let job = erase_lifetime(job);
    let latch = Arc::clone(latch);
    let wrapped: Job = Box::new(move || {
        let _guard = crate::BudgetGuard::set(budget);
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(job)) {
            latch.record_panic(payload);
        }
        latch.complete_one();
    });
    ensure_workers(budget.saturating_sub(1));
    let p = pool();
    let mut q = p.queue.lock().expect("pool queue poisoned");
    q.push_back(wrapped);
    drop(q);
    // One job needs one runner: notify_one avoids waking every parked
    // worker per push (thundering herd on the queue mutex). If the wakeup
    // lands on a helper that returns without consuming, the job still
    // cannot be stranded — the submitting batch's owner polls the queue
    // on a timeout in help_until_done until its latch completes.
    p.signal.notify_one();
}

/// Executes every job on the pool, the caller included, and returns once
/// all have finished. The first panic among the jobs is re-raised here
/// (after the whole batch completed, so borrows stay sound).
pub(crate) fn run_batch<'a>(jobs: Vec<Box<dyn FnOnce() + Send + 'a>>) {
    if jobs.len() <= 1 {
        for job in jobs {
            job();
        }
        return;
    }
    let budget = crate::current_num_threads();
    let latch = Latch::new();
    let mut jobs = jobs.into_iter();
    let first = jobs.next().expect("len checked above");
    for job in jobs {
        // SAFETY: `help_until_done` below blocks until the latch counts
        // every job complete, bounding the erased lifetimes.
        unsafe { submit(&latch, budget, job) };
    }
    // The caller runs the first job itself — halving traffic on the shared
    // queue for the ubiquitous 2-job `join` — then helps with the rest.
    // (No budget guard needed: `budget` is the caller's ambient value.)
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(first)) {
        latch.record_panic(payload);
    }
    help_until_done(&latch);
    if let Some(payload) = latch.take_panic() {
        panic::resume_unwind(payload);
    }
}

/// Runs both closures, potentially in parallel, and returns their
/// results — the classic fork-join primitive, mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    run_batch(vec![
        Box::new(|| ra = Some(a())),
        Box::new(|| rb = Some(b())),
    ]);
    (
        ra.expect("join arm a completed"),
        rb.expect("join arm b completed"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn join_borrows_stack_data() {
        let data: Vec<u64> = (0..10_000).collect();
        let (lo, hi) = data.split_at(5_000);
        let (a, b) = join(|| lo.iter().sum::<u64>(), || hi.iter().sum::<u64>());
        assert_eq!(a + b, data.iter().sum::<u64>());
    }

    #[test]
    fn batch_panic_propagates_after_completion() {
        let finished = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 2 {
                            panic!("boom {i}");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            run_batch(jobs);
        }));
        assert!(caught.is_err(), "panic must propagate");
        // Every non-panicking job still ran to completion before the
        // panic was re-raised.
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn workers_are_reused_across_batches() {
        // Warm up at a budget at least as large as any other test in this
        // binary uses (including the ambient default), so concurrent tests
        // cannot legitimately grow the pool while we measure.
        let warm = crate::ThreadPoolBuilder::new()
            .num_threads(crate::current_num_threads().max(8))
            .build()
            .unwrap();
        warm.install(|| join(|| (), || ()));
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let spawned = total_workers_spawned();
        for _ in 0..64 {
            pool.install(|| join(|| (), || ()));
        }
        assert_eq!(
            total_workers_spawned(),
            spawned,
            "batches must reuse pooled workers, not spawn fresh threads"
        );
    }
}

//! Offline vendored shim for the `serde` crate — now with real machinery.
//!
//! Earlier revisions only provided marker traits; this version implements a
//! working (deliberately small) subset of serde's data model so the
//! workspace can emit and consume JSON through the sibling `serde_json`
//! shim:
//!
//! * [`Serialize`] drives a by-value [`ser::Serializer`] with compound
//!   builders ([`ser::SerializeSeq`], [`ser::SerializeMap`],
//!   [`ser::SerializeStruct`]) — the same shape as real serde, minus
//!   `serialize_newtype_*`/`serialize_tuple_*` and friends the workspace
//!   does not use.
//! * [`Deserialize`] pulls from a by-value [`de::Deserializer`]. Instead of
//!   serde's visitor pattern, compound values hand back *sub-deserializers*
//!   (`Vec<Self>` for sequences, `Vec<(String, Self)>` for maps), which is
//!   enough for tree-shaped self-describing formats like JSON and keeps the
//!   derive output simple.
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) emits real field-by-field impls for named-field structs and
//!   unit-variant enums.
//!
//! Unsupported (vs. real serde): borrowed deserialization (`&'de str`),
//! non-unit enum variants, generics on derived types, and serde attributes
//! (`#[serde(...)]`). Swap the path dependency for the real crates when
//! registry access is available — call sites use the real API surface.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;

mod impls;

pub use de::Deserializer;
pub use ser::Serializer;

/// A value that can be written to any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be reconstructed from any [`Deserializer`].
pub trait Deserialize: Sized {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error>;
}

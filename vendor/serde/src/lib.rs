//! Offline vendored shim for the `serde` crate.
//!
//! Provides marker `Serialize`/`Deserialize` traits and re-exports the
//! no-op derives from the sibling `serde_derive` shim. The workspace
//! currently only tags types as serializable; when real serialization
//! lands, replace both path dependencies with the actual crates — call
//! sites (`use serde::{Deserialize, Serialize}` + `#[derive(...)]`)
//! are already written against the real API.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

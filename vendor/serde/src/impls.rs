//! `Serialize`/`Deserialize` impls for the std types the workspace uses.

use crate::de::{self, Deserializer};
use crate::ser::{SerializeMap, SerializeSeq, Serializer};
use crate::{Deserialize, Serialize};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool()
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(i64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.deserialize_i64()?;
                <$t>::try_from(v).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.deserialize_u64()?;
                <$t>::try_from(v).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Deserialize for isize {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.deserialize_i64()?;
        isize::try_from(v).map_err(|_| de::Error::custom(format!("{v} out of range for isize")))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        Ok(deserializer.deserialize_f64()? as f32)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_f64()
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Deserialize for String {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl Deserialize for () {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_unit()
    }
}

// ---------------------------------------------------------------------------
// References and containers.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        deserializer
            .deserialize_seq()?
            .into_iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        if deserializer.is_null() {
            Ok(None)
        } else {
            T::deserialize(deserializer).map(Some)
        }
    }
}

macro_rules! impl_tuple {
    ($(($len:expr => $($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some($len))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize<__D: Deserializer>(deserializer: __D) -> Result<Self, __D::Error> {
                let items = deserializer.deserialize_seq()?;
                if items.len() != $len {
                    return Err(de::Error::invalid_length($len, items.len()));
                }
                let mut it = items.into_iter();
                Ok(($($name::deserialize(it.next().expect("length checked"))?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (1 => A.0)
    (2 => A.0, B.1)
    (3 => A.0, B.1, C.2)
    (4 => A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// std::time::Duration — `{ "secs": u64, "nanos": u32 }`, as in real serde.
// ---------------------------------------------------------------------------

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(2))?;
        map.serialize_entry("secs", &self.as_secs())?;
        map.serialize_entry("nanos", &self.subsec_nanos())?;
        map.end()
    }
}

impl Deserialize for Duration {
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        let mut secs: Option<u64> = None;
        let mut nanos: Option<u32> = None;
        for (key, value) in deserializer.deserialize_map()? {
            match key.as_str() {
                "secs" => secs = Some(u64::deserialize(value)?),
                "nanos" => nanos = Some(u32::deserialize(value)?),
                _ => {}
            }
        }
        match (secs, nanos) {
            (Some(s), Some(n)) => Ok(Duration::new(s, n)),
            _ => Err(de::Error::custom(
                "Duration requires `secs` and `nanos` fields".to_string(),
            )),
        }
    }
}

//! Deserialization half of the data model.
//!
//! Real serde hands a `Visitor` to the format; this shim inverts that:
//! compound values return *sub-deserializers* (`Vec<Self>` for sequences,
//! `Vec<(String, Self)>` for maps) that the caller recurses into. That only
//! works for tree-shaped, fully-buffered formats — exactly what the
//! vendored `serde_json` provides — and keeps both the derive output and
//! the `Deserializer` impls short.

use std::fmt::{Debug, Display};

/// Errors produced while deserializing.
pub trait Error: Debug + Display + Sized {
    /// Wraps an arbitrary message.
    fn custom(msg: String) -> Self;

    fn invalid_type(expected: &str, found: &str) -> Self {
        Self::custom(format!("invalid type: expected {expected}, found {found}"))
    }

    fn invalid_length(expected: usize, found: usize) -> Self {
        Self::custom(format!(
            "invalid length: expected {expected} elements, found {found}"
        ))
    }

    fn missing_field(ty: &'static str, field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}` of `{ty}`"))
    }

    fn unknown_variant(ty: &'static str, variant: &str) -> Self {
        Self::custom(format!("unknown variant `{variant}` of enum `{ty}`"))
    }
}

/// A positioned cursor over one value of a self-describing format.
pub trait Deserializer: Sized {
    type Error: Error;

    fn deserialize_bool(self) -> Result<bool, Self::Error>;
    fn deserialize_i64(self) -> Result<i64, Self::Error>;
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    fn deserialize_f64(self) -> Result<f64, Self::Error>;
    fn deserialize_string(self) -> Result<String, Self::Error>;
    /// JSON `null`.
    fn deserialize_unit(self) -> Result<(), Self::Error>;
    /// Non-consuming probe used by `Option<T>`: is the value `null`?
    fn is_null(&self) -> bool;
    /// A sequence, as one sub-deserializer per element.
    fn deserialize_seq(self) -> Result<Vec<Self>, Self::Error>;
    /// A map, as `(key, sub-deserializer)` pairs in document order.
    fn deserialize_map(self) -> Result<Vec<(String, Self)>, Self::Error>;
    /// A struct. Formats may use `fields` for validation; the default
    /// treats structs exactly like maps.
    fn deserialize_struct(
        self,
        name: &'static str,
        fields: &'static [&'static str],
    ) -> Result<Vec<(String, Self)>, Self::Error> {
        let _ = (name, fields);
        self.deserialize_map()
    }
}

//! Serialization half of the data model.

use crate::Serialize;
use std::fmt::{Debug, Display};

/// Errors produced while serializing.
pub trait Error: Debug + Display + Sized {
    /// Wraps an arbitrary message.
    fn custom(msg: String) -> Self;
}

/// Format driver. Methods consume `self`; compound values continue through
/// the associated builder types.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// `()` — JSON `null`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// `None` — JSON `null`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// `Some(value)` serializes transparently as `value`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// A fieldless enum variant — JSON string of the variant name.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Builder for sequence elements.
pub trait SerializeSeq {
    type Ok;
    type Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for map entries. Keys are restricted to strings — the only key
/// type JSON supports.
pub trait SerializeMap {
    type Ok;
    type Error;

    fn serialize_entry<T: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for struct fields, in declaration order.
pub trait SerializeStruct {
    type Ok;
    type Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

//! Offline vendored shim for the `rand` crate (0.9-style API).
//!
//! The workspace's generators only need a deterministic, seedable,
//! statistically reasonable PRNG: `SmallRng::seed_from_u64`, the `Rng`
//! methods `random`/`random_range`, and `SliceRandom::shuffle`. This crate
//! provides exactly that subset with a SplitMix64 core, so graph generation
//! is fully reproducible from a `u64` seed. Swap the path dependency for the
//! real `rand` crate when registry access is available; the API names match
//! rand 0.9 (`random_range`, not the 0.8-era `gen_range`).

use std::ops::{Range, RangeInclusive};

/// Core PRNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, mirroring `rand::Rng` (0.9 naming).
pub trait Rng: RngCore {
    /// A uniform value of `T` over its standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator (SplitMix64). Not cryptographic —
    /// same contract as `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Avoid the all-zero-ish weak start for seed 0 by stirring once.
            let mut rng = SmallRng { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Standard-distribution sampling for the handful of types the workspace
/// draws without an explicit range.
pub trait StandardUniform {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform in `[0, bound)` without modulo
/// bias worth caring about at these bound sizes.
#[inline]
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: usize = rng.random_range(5..5);
    }
}

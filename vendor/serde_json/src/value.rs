//! The JSON document tree.

use crate::Error;
use serde::de::{self, Deserializer};
use serde::ser::{SerializeMap, SerializeSeq, Serializer};
use serde::Serialize;

/// A JSON number. The parser produces `PosInt` for unsigned integer
/// literals, `NegInt` for negative ones, and `Float` whenever a fraction,
/// exponent, or out-of-range magnitude forces one (plus `-0`, which JSON
/// distinguishes from `0` only as a float).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// Lossy view of any numeric variant.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

/// A JSON object that preserves insertion order, so that parsing a document
/// and re-serializing it reproduces the original key order byte-for-byte.
/// Lookups are linear scans — fine for the report-sized documents the
/// workspace produces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `key`, replacing the value in place (keeping the original
    /// position) if the key already exists. Returns the previous value.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// Any JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// Human-readable type name, used in decode errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(map) => map.get_mut(key),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Panics on non-objects and missing keys, like real serde_json's
    /// `Index` for `&str` on non-objects (missing keys there yield `Null`;
    /// panicking instead surfaces typos in tests immediately).
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no key {key:?} in {}", self.type_name()))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = crate::to_string(self).map_err(|_| std::fmt::Error)?;
        f.write_str(&s)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::PosInt(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v < 0 {
            Value::Number(Number::NegInt(v))
        } else {
            Value::Number(Number::PosInt(v as u64))
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

// ---------------------------------------------------------------------------
// A Value re-serializes through any Serializer (this is what makes
// parse → re-serialize and Value-embedding-in-reports work).
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::PosInt(v)) => serializer.serialize_u64(*v),
            Value::Number(Number::NegInt(v)) => serializer.serialize_i64(*v),
            Value::Number(Number::Float(v)) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(map) => {
                let mut m = serializer.serialize_map(Some(map.len()))?;
                for (key, value) in map.iter() {
                    m.serialize_entry(key, value)?;
                }
                m.end()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding: `&Value` is a serde Deserializer.
// ---------------------------------------------------------------------------

fn type_error<T>(expected: &str, found: &Value) -> Result<T, Error> {
    Err(de::Error::invalid_type(expected, found.type_name()))
}

impl<'a> Deserializer for &'a Value {
    type Error = Error;

    fn deserialize_bool(self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => type_error("boolean", other),
        }
    }

    fn deserialize_i64(self) -> Result<i64, Error> {
        match self {
            Value::Number(n) => n
                .as_i64()
                .ok_or_else(|| de::Error::custom(format!("{n:?} out of range for i64"))),
            other => type_error("number", other),
        }
    }

    fn deserialize_u64(self) -> Result<u64, Error> {
        match self {
            Value::Number(n) => n
                .as_u64()
                .ok_or_else(|| de::Error::custom(format!("{n:?} out of range for u64"))),
            other => type_error("number", other),
        }
    }

    fn deserialize_f64(self) -> Result<f64, Error> {
        match self {
            Value::Number(n) => Ok(n.as_f64()),
            other => type_error("number", other),
        }
    }

    fn deserialize_string(self) -> Result<String, Error> {
        match self {
            Value::String(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }

    fn deserialize_unit(self) -> Result<(), Error> {
        match self {
            Value::Null => Ok(()),
            other => type_error("null", other),
        }
    }

    fn is_null(&self) -> bool {
        Value::is_null(self)
    }

    fn deserialize_seq(self) -> Result<Vec<&'a Value>, Error> {
        match self {
            Value::Array(items) => Ok(items.iter().collect()),
            other => type_error("array", other),
        }
    }

    fn deserialize_map(self) -> Result<Vec<(String, &'a Value)>, Error> {
        match self {
            Value::Object(map) => Ok(map.iter().map(|(k, v)| (k.clone(), v)).collect()),
            other => type_error("object", other),
        }
    }
}

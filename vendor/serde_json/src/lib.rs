//! Offline vendored shim for the `serde_json` crate.
//!
//! Implements the subset the workspace uses against the vendored `serde`
//! shim's data model:
//!
//! * [`Value`] — a JSON document tree whose objects preserve **insertion
//!   order** (like `serde_json` with `preserve_order`), so
//!   parse → re-serialize is byte-identical;
//! * [`from_str`] / [`from_value`] — a recursive-descent parser with full
//!   escape handling (including `\uXXXX` surrogate pairs), int/float
//!   disambiguation, and positioned errors, plus typed decoding through
//!   `serde::Deserialize`;
//! * [`to_string`] / [`to_string_pretty`] / [`to_writer`] /
//!   [`to_writer_pretty`] / [`to_value`] — a writer-based serializer
//!   driven by `serde::Serialize` (pretty output uses 2-space indent,
//!   matching real `serde_json`).
//!
//! Number formatting: floats print via Rust's shortest round-trippable
//! `Display`, so integral floats (e.g. `1.0`) serialize as `1` and re-parse
//! as integers — documents produced by this serializer always round-trip
//! byte-identically, which the test harness relies on. Non-finite floats
//! serialize as `null`, as in real `serde_json`.
//!
//! Differences from the real crate (beyond scale): `from_value` borrows the
//! input, deserialization is owned (no `&'de str` borrowing), and there is
//! no streaming reader.

mod de;
mod ser;
mod value;

pub use value::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Error raised by parsing, serialization, or typed decoding. Parse errors
/// carry a 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }

    pub(crate) fn at(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }

    /// 1-based line of a parse error (0 for non-parse errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of a parse error (0 for non-parse errors).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom(msg: String) -> Self {
        Error::new(msg)
    }
}

impl serde::de::Error for Error {
    fn custom(msg: String) -> Self {
        Error::new(msg)
    }
}

/// Parses a complete JSON document into a [`Value`].
pub fn from_str_value(input: &str) -> Result<Value, Error> {
    de::parse(input)
}

/// Parses a complete JSON document and decodes it into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = de::parse(input)?;
    from_value(&value)
}

/// Decodes a [`Value`] tree into `T`.
///
/// Unlike real serde_json this borrows the value instead of consuming it —
/// the decoding path is owned, so nothing is gained by taking ownership.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut ser::JsonSerializer::compact(&mut out))?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut ser::JsonSerializer::pretty(&mut out))?;
    Ok(out)
}

/// Serializes `value` compactly into an [`std::io::Write`].
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Serializes `value` pretty-printed into an [`std::io::Write`].
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ser::ValueSerializer)
}

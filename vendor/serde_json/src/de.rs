//! Parsing: a recursive-descent JSON parser producing [`Value`] trees.

use crate::value::{Map, Number, Value};
use crate::Error;

/// Nesting depth cap — deep enough for any real document, shallow enough
/// that hostile input cannot overflow the stack.
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    /// Positioned error at the current cursor. The cursor may sit mid-way
    /// through a multibyte character (byte-wise scanning), so clamp to the
    /// previous char boundary before slicing.
    fn error(&self, msg: impl Into<String>) -> Error {
        let mut end = self.pos.min(self.input.len());
        while !self.input.is_char_boundary(end) {
            end -= 1;
        }
        let consumed = &self.input[..end];
        let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = consumed
            .rsplit_once('\n')
            .map_or(consumed.chars().count(), |(_, tail)| tail.chars().count())
            + 1;
        Error::at(msg, line, column)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected `{literal}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("recursion depth exceeds {MAX_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            // Duplicate keys: last occurrence wins, like real serde_json.
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(String::from_utf8(out).expect("input was UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_escape(&mut self, out: &mut Vec<u8>) -> Result<(), Error> {
        let escaped = self.peek().ok_or_else(|| self.error("truncated escape"))?;
        self.pos += 1;
        let simple = match escaped {
            b'"' => Some(b'"'),
            b'\\' => Some(b'\\'),
            b'/' => Some(b'/'),
            b'b' => Some(0x08),
            b'f' => Some(0x0c),
            b'n' => Some(b'\n'),
            b'r' => Some(b'\r'),
            b't' => Some(b'\t'),
            b'u' => None,
            other => {
                // `other` may be the first byte of a multibyte character;
                // describe it without assuming it is a complete char.
                let shown = if other.is_ascii() {
                    format!("`\\{}`", other as char)
                } else {
                    format!("byte 0x{other:02x}")
                };
                return Err(self.error(format!("invalid escape {shown}")));
            }
        };
        if let Some(b) = simple {
            out.push(b);
            return Ok(());
        }
        // \uXXXX, possibly a surrogate pair.
        let first = self.parse_hex4()?;
        let c = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(self.error("invalid low surrogate in \\u escape pair"));
                }
                let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                char::from_u32(combined)
                    .ok_or_else(|| self.error("invalid surrogate pair in \\u escape"))?
            } else {
                return Err(self.error("unpaired high surrogate in \\u escape"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.error("unpaired low surrogate in \\u escape"));
        } else {
            char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))?
        };
        let mut buf = [0u8; 4];
        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        // Byte-wise so a multibyte character inside the escape cannot make
        // a string slice straddle a char boundary.
        let mut v = 0u32;
        for &b in &self.bytes[self.pos..end] {
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.error("invalid hex digits in \\u escape")),
            };
            v = (v << 4) | u32::from(digit);
        }
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number: missing integer digits")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number: missing fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number: missing exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if negative {
                match text.parse::<i64>() {
                    // `-0` is a float in JSON semantics: it is distinct from
                    // `0` only through IEEE negative zero.
                    Ok(0) => return Ok(Value::Number(Number::Float(-0.0))),
                    Ok(v) => return Ok(Value::Number(Number::NegInt(v))),
                    Err(_) => {} // overflow: fall through to f64
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            // Integer overflow falls through to f64.
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number `{text}`")))?;
        if !v.is_finite() {
            return Err(self.error(format!("number `{text}` out of range")));
        }
        Ok(Value::Number(Number::Float(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        parse(s).unwrap()
    }

    #[test]
    fn scalars() {
        assert_eq!(v("null"), Value::Null);
        assert_eq!(v("true"), Value::Bool(true));
        assert_eq!(v(" false "), Value::Bool(false));
        assert_eq!(v("42"), Value::Number(Number::PosInt(42)));
        assert_eq!(v("-7"), Value::Number(Number::NegInt(-7)));
        assert_eq!(v("1.5"), Value::Number(Number::Float(1.5)));
        assert_eq!(v("1e3"), Value::Number(Number::Float(1000.0)));
        assert_eq!(v("-2.5e-2"), Value::Number(Number::Float(-0.025)));
        assert_eq!(v("\"hi\""), Value::String("hi".to_string()));
    }

    #[test]
    fn negative_zero_is_float() {
        match v("-0") {
            Value::Number(Number::Float(f)) => {
                assert_eq!(f, 0.0);
                assert!(f.is_sign_negative());
            }
            other => panic!("{other:?}"),
        }
        // And it reserializes to the same text.
        assert_eq!(crate::to_string(&v("-0")).unwrap(), "-0");
    }

    #[test]
    fn integer_overflow_becomes_float() {
        assert!(matches!(
            v("99999999999999999999999999"),
            Value::Number(Number::Float(_))
        ));
        assert_eq!(
            v("18446744073709551615"),
            Value::Number(Number::PosInt(u64::MAX))
        );
        assert_eq!(
            v("-9223372036854775808"),
            Value::Number(Number::NegInt(i64::MIN))
        );
    }

    #[test]
    fn escapes_round_trip() {
        let s = v(r#""a\"b\\c\/d\b\f\n\r\te\u0041\u00e9\ud83e\udd80""#);
        assert_eq!(
            s,
            Value::String("a\"b\\c/d\u{8}\u{c}\n\r\teAé🦀".to_string())
        );
        // Serialize → parse gives back the same string.
        let text = crate::to_string(&s).unwrap();
        assert_eq!(v(&text), s);
    }

    #[test]
    fn nested_structure_and_key_order() {
        let doc = v(r#"{"b": [1, {"x": null}], "a": {"z": 1, "y": 2}}"#);
        assert_eq!(doc["b"].as_array().unwrap().len(), 2);
        let keys: Vec<_> = doc.as_object().unwrap().keys().cloned().collect();
        assert_eq!(keys, ["b", "a"]); // insertion order, not sorted
        let inner: Vec<_> = doc["a"].as_object().unwrap().keys().cloned().collect();
        assert_eq!(inner, ["z", "y"]);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        assert_eq!(v(r#"{"k": 1, "k": 2}"#)["k"].as_u64(), Some(2));
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("true"), "{e}");
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] garbage").is_err());
        assert!(parse("01").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("\"\\ud800\"").is_err(), "lone high surrogate");
        // Multibyte characters in malformed positions must produce errors,
        // not char-boundary panics (byte-wise cursor slicing).
        assert!(parse("\"\\é\"").is_err(), "multibyte escape char");
        assert!(parse("\"\\u00€\"").is_err(), "multibyte inside \\u digits");
        assert!(parse("é").is_err(), "multibyte at top level");
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let e = parse(&deep).unwrap_err();
        assert!(e.to_string().contains("depth"), "{e}");
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}

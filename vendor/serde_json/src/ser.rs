//! Serialization: a writer-based JSON emitter and a `Value`-tree builder,
//! both driven through `serde::Serializer`.

use crate::value::{Map, Number, Value};
use crate::Error;
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct, Serializer};
use serde::Serialize;

/// Escapes and quotes `s` per RFC 8259: `"`, `\`, the two-character forms
/// for the common control characters, `\u00XX` for the rest.
pub(crate) fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float with Rust's shortest round-trippable `Display`. Integral
/// floats print without a fractional part (and re-parse as integers);
/// non-finite values print as `null`, as in real serde_json.
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Streaming JSON writer. `compact` emits no whitespace; `pretty` uses
/// 2-space indentation in serde_json's style.
pub struct JsonSerializer<'a> {
    out: &'a mut String,
    pretty: bool,
    depth: usize,
}

impl<'a> JsonSerializer<'a> {
    pub fn compact(out: &'a mut String) -> Self {
        JsonSerializer {
            out,
            pretty: false,
            depth: 0,
        }
    }

    pub fn pretty(out: &'a mut String) -> Self {
        JsonSerializer {
            out,
            pretty: true,
            depth: 0,
        }
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }
}

/// In-progress array.
pub struct SeqWriter<'s, 'a> {
    ser: &'s mut JsonSerializer<'a>,
    has_elements: bool,
}

/// In-progress object (serves both maps and structs).
pub struct ObjWriter<'s, 'a> {
    ser: &'s mut JsonSerializer<'a>,
    has_entries: bool,
}

impl<'s, 'a> Serializer for &'s mut JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqWriter<'s, 'a>;
    type SerializeMap = ObjWriter<'s, 'a>;
    type SerializeStruct = ObjWriter<'s, 'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped_str(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant: &'static str,
    ) -> Result<(), Error> {
        write_escaped_str(self.out, variant);
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Error> {
        self.out.push('[');
        self.depth += 1;
        Ok(SeqWriter {
            ser: self,
            has_elements: false,
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Error> {
        self.out.push('{');
        self.depth += 1;
        Ok(ObjWriter {
            ser: self,
            has_entries: false,
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, Error> {
        self.out.push('{');
        self.depth += 1;
        Ok(ObjWriter {
            ser: self,
            has_entries: false,
        })
    }
}

impl SerializeSeq for SeqWriter<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if self.has_elements {
            self.ser.out.push(',');
        }
        self.has_elements = true;
        if self.ser.pretty {
            self.ser.newline_indent();
        }
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.ser.depth -= 1;
        if self.ser.pretty && self.has_elements {
            self.ser.newline_indent();
        }
        self.ser.out.push(']');
        Ok(())
    }
}

impl ObjWriter<'_, '_> {
    fn write_key(&mut self, key: &str) {
        if self.has_entries {
            self.ser.out.push(',');
        }
        self.has_entries = true;
        if self.ser.pretty {
            self.ser.newline_indent();
        }
        write_escaped_str(self.ser.out, key);
        self.ser.out.push(':');
        if self.ser.pretty {
            self.ser.out.push(' ');
        }
    }

    fn finish(self) -> Result<(), Error> {
        self.ser.depth -= 1;
        if self.ser.pretty && self.has_entries {
            self.ser.newline_indent();
        }
        self.ser.out.push('}');
        Ok(())
    }
}

impl SerializeMap for ObjWriter<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<T: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &T,
    ) -> Result<(), Error> {
        self.write_key(key);
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStruct for ObjWriter<'_, '_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.write_key(name);
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

// ---------------------------------------------------------------------------
// Value-tree builder (`crate::to_value`).
// ---------------------------------------------------------------------------

/// Serializer whose output is a [`Value`] tree.
pub struct ValueSerializer;

/// In-progress `Value::Array`.
pub struct ValueSeqBuilder {
    items: Vec<Value>,
}

/// In-progress `Value::Object`.
pub struct ValueMapBuilder {
    map: Map,
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = ValueSeqBuilder;
    type SerializeMap = ValueMapBuilder;
    type SerializeStruct = ValueMapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(if v < 0 {
            Value::Number(Number::NegInt(v))
        } else {
            Value::Number(Number::PosInt(v as u64))
        })
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::PosInt(v)))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(Number::Float(v)))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_string()))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeqBuilder, Error> {
        Ok(ValueSeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<ValueMapBuilder, Error> {
        Ok(ValueMapBuilder { map: Map::new() })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<ValueMapBuilder, Error> {
        Ok(ValueMapBuilder { map: Map::new() })
    }
}

impl SerializeSeq for ValueSeqBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

impl SerializeMap for ValueMapBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_entry<T: Serialize + ?Sized>(
        &mut self,
        key: &str,
        value: &T,
    ) -> Result<(), Error> {
        self.map.insert(key, value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

impl SerializeStruct for ValueMapBuilder {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.map.insert(name, value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

//! Quickstart: build a bipartite graph, tip-decompose it with RECEIPT, and
//! inspect the k-tip hierarchy.
//!
//! Run with: `cargo run --release --example quickstart`

use bigraph::{builder::GraphBuilder, Side};
use receipt::{hierarchy, tip_decompose, Config};

fn main() {
    // The worked example from Figure 1 of the paper: a 4x4 bipartite graph
    // where u2 and u3 form a 3-tip, u1 joins them at the 2-tip level, and
    // u4 only makes it into the 1-tip.
    let graph = GraphBuilder::new(4, 4)
        .add_edges([
            (0, 0),
            (0, 1), // u1 - {v1, v2}
            (1, 0),
            (1, 1),
            (1, 2), // u2 - {v1, v2, v3}
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3), // u3 - {v1..v4}
            (3, 2),
            (3, 3), // u4 - {v3, v4}
        ])
        .build()
        .expect("valid edge list");

    // Decompose the U side. Config::default() is the paper's setup:
    // P = 150 partitions, HUC + DGM on.
    let decomposition = tip_decompose(&graph, Side::U, &Config::default());

    println!("tip numbers (θ_u):");
    for (u, theta) in decomposition.tip.iter().enumerate() {
        println!("  u{} -> {}", u + 1, theta);
    }
    assert_eq!(decomposition.tip, vec![2, 3, 3, 1], "matches Figure 1");

    // Recover the hierarchy from the tip numbers.
    let view = graph.view(Side::U);
    for k in 1..=decomposition.theta_max() {
        let tips = hierarchy::ktip_components(view, &decomposition.tip, k);
        println!(
            "{k}-tips: {:?}",
            tips.iter()
                .map(|c| c.iter().map(|&u| format!("u{}", u + 1)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        );
    }

    // Workload metrics for the run (the quantities of Table 3).
    let m = &decomposition.metrics;
    println!(
        "wedges traversed: {} (count {}, CD {}, FD {}), sync rounds: {}",
        m.wedges_total(),
        m.wedges_count,
        m.wedges_cd,
        m.wedges_fd,
        m.sync_rounds
    );
}

//! Tip-number distribution exploration (the Figure 4 analysis of the
//! paper) on a generated dataset analog, including the workload metrics
//! that motivate RECEIPT's design.
//!
//! Run with: `cargo run --release --example tip_distribution [It|De|Or|Lj|En|Tr]`

use bigraph::{datasets, Side};
use receipt::{tip_decompose, Config};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "It".to_string());
    let spec = datasets::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown analog {name:?}; pick one of It De Or Lj En Tr");
        std::process::exit(2);
    });
    let graph = spec.generate();
    println!(
        "{} analog ({}): {} x {} vertices, {} edges",
        spec.name,
        spec.paper_description,
        graph.num_u(),
        graph.num_v(),
        graph.num_edges()
    );

    for side in [Side::U, Side::V] {
        let d = tip_decompose(&graph, side, &Config::default());
        let theta_max = d.theta_max();
        println!("\n== {}{} ==", spec.name, side.suffix());
        println!("theta_max = {theta_max}");

        // Deciles of the tip-number distribution (Fig. 4 is the same curve
        // on a log axis).
        let mut sorted = d.tip.clone();
        sorted.sort_unstable();
        print!("deciles:");
        for q in (0..=10).map(|i| i as f64 / 10.0) {
            let idx = ((sorted.len() - 1) as f64 * q) as usize;
            print!(" {}", sorted[idx]);
        }
        println!();

        // The paper's key observation: maxima are extreme outliers.
        let p999 = sorted[(sorted.len() - 1) * 999 / 1000];
        println!(
            "99.9th percentile = {p999} ({:.4}% of theta_max)",
            100.0 * p999 as f64 / theta_max.max(1) as f64
        );

        // Workload summary (Table 3 quantities for this run).
        let m = &d.metrics;
        println!(
            "wedges: total {} | pvBcnt {} | CD {} | FD {}",
            m.wedges_total(),
            m.wedges_count,
            m.wedges_cd,
            m.wedges_fd
        );
        println!(
            "sync rounds = {}, HUC recounts = {}, DGM compactions = {}, subsets = {}",
            m.sync_rounds, m.recounts, m.compactions, m.partitions_used
        );
    }
}

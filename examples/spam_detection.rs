//! Spam-reviewer detection on a user–product rating graph.
//!
//! The paper motivates tip decomposition with exactly this application
//! (§1): colluding reviewers rate the same selected products, so they
//! appear as a dense biclique-like block in the bipartite user–product
//! graph, while honest reviewers spread their ratings widely. High tip
//! numbers flag the colluders.
//!
//! Run with: `cargo run --release --example spam_detection`

use bigraph::{gen, Side};
use receipt::{hierarchy, tip_decompose, Config};

const USERS: usize = 2_000;
const PRODUCTS: usize = 800;
const SPAMMERS: usize = 25; // users 0..25 collude
const TARGETED: usize = 12; // ...on products 0..12

fn main() {
    // Honest background traffic: a skewed random rating graph.
    let background = gen::zipf(USERS, PRODUCTS, 12_000, 0.4, 0.7, 42);
    // Overlay the collusion block: every spammer rates every targeted
    // product (a planted (25 x 12) biclique).
    let mut edges: Vec<(u32, u32)> = background.edges().collect();
    for s in 0..SPAMMERS as u32 {
        for p in 0..TARGETED as u32 {
            edges.push((s, p));
        }
    }
    let graph = bigraph::builder::from_edges(USERS, PRODUCTS, &edges).unwrap();
    println!(
        "user-product graph: {} users x {} products, {} ratings",
        USERS,
        PRODUCTS,
        graph.num_edges()
    );

    // Tip-decompose the user side.
    let decomposition = tip_decompose(&graph, Side::U, &Config::default());
    let tips = &decomposition.tip;

    // Inside the block every spammer shares >= C(12,2) butterflies with 24
    // partners; honest users share far fewer. Rank users by tip number.
    let mut ranked: Vec<(u32, u64)> = (0..USERS as u32).map(|u| (u, tips[u as usize])).collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("\ntop 30 users by tip number:");
    let mut caught = 0;
    for &(u, theta) in ranked.iter().take(30) {
        let is_spammer = (u as usize) < SPAMMERS;
        caught += usize::from(is_spammer);
        println!(
            "  user {u:>4}  theta = {theta:>8}  {}",
            if is_spammer { "<- planted spammer" } else { "" }
        );
    }
    println!("\n{caught}/{SPAMMERS} planted spammers in the top 30");
    assert!(
        caught >= SPAMMERS * 8 / 10,
        "tip decomposition should surface the colluding block"
    );

    // The spam ring shows up as one tight k-tip near the top of the
    // hierarchy: pick k as the lowest spammer tip number and extract it.
    let k = (0..SPAMMERS as u32)
        .map(|u| tips[u as usize])
        .min()
        .unwrap();
    let components = hierarchy::ktip_components(graph.view(Side::U), tips, k);
    let ring = components
        .iter()
        .find(|c| c.iter().filter(|&&u| (u as usize) < SPAMMERS).count() >= SPAMMERS / 2)
        .expect("a component containing the ring");
    println!(
        "{k}-tip containing the ring has {} members ({} planted)",
        ring.len(),
        ring.iter().filter(|&&u| (u as usize) < SPAMMERS).count()
    );
}

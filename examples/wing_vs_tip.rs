//! Comparing tip (vertex) and wing (edge) decomposition on one graph —
//! the §7 extension of the paper.
//!
//! Wing numbers refine tip numbers: a vertex can have a high tip number
//! because of a single dense attachment, while its other edges are flimsy;
//! wing decomposition scores each edge separately.
//!
//! Run with: `cargo run --release --example wing_vs_tip`

use bigraph::{gen, Side};
use receipt::{tip_decompose, wing, Config};

fn main() {
    // A small community graph: three planted 6x6 bicliques plus noise.
    let graph = gen::planted_bicliques(60, 60, 3, 6, 6, 150, 99);
    println!(
        "graph: {}x{} vertices, {} edges",
        graph.num_u(),
        graph.num_v(),
        graph.num_edges()
    );

    let tips = tip_decompose(&graph, Side::U, &Config::default());
    let wings = wing::wing_decompose(graph.view(Side::U), 4);
    println!(
        "theta_max = {}, max wing = {}",
        tips.theta_max(),
        wings.max_wing()
    );

    // Block members: u in 0..6 belong to the first planted biclique. Every
    // in-block edge closes C(5,1)*C(5,1) = 25 butterflies inside the block.
    let block_edge = wings.wing_of(0, 1).expect("edge (u0, v1) is planted");
    println!("wing number of an in-block edge: {block_edge}");
    assert!(block_edge >= 20, "in-block edges are deeply nested");

    // Noise edges incident on block vertices have low wing numbers even
    // though the vertex itself has a high tip number.
    let mut in_block = Vec::new();
    let mut stray = Vec::new();
    for (e, &(u, v)) in wings.edges.iter().enumerate() {
        let block = u / 6;
        if u < 18 && v < 18 && v / 6 == block {
            in_block.push(wings.wing[e]);
        } else if u < 18 {
            stray.push(wings.wing[e]);
        }
    }
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    println!(
        "avg wing: in-block edges {:.1} vs stray edges of the same vertices {:.1}",
        avg(&in_block),
        avg(&stray)
    );
    assert!(avg(&in_block) > avg(&stray));

    // Consistency: an edge's wing number never exceeds the smaller tip
    // number of... (not true in general) — but it never exceeds the edge's
    // own butterfly count:
    let counts = butterfly::per_edge::per_edge_counts(graph.view(Side::U));
    for (e, &w) in wings.wing.iter().enumerate() {
        assert!(w <= counts[e]);
    }
    println!("wing <= per-edge butterfly count verified for all edges");
}

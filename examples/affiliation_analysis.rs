//! Research-group discovery in an author–paper affiliation network.
//!
//! §1 of the paper: tip decomposition "can find groups of researchers
//! (along with group hierarchies) with common affiliations from
//! author–paper networks". Authors who co-publish heavily share many
//! butterflies (author-pair × paper-pair), so research groups surface as
//! nested k-tips: the inner core of a group has higher tip numbers than
//! occasional collaborators.
//!
//! Run with: `cargo run --release --example affiliation_analysis`

use bigraph::{gen, Side};
use receipt::{hierarchy, tip_decompose, Config};

fn main() {
    // Affiliation model: 1500 authors, 900 papers, 12 communities (labs);
    // every author writes within one lab, so labs stay separable in the
    // butterfly-connectivity sense while sharing the same paper pool.
    let graph = gen::affiliation(1_500, 900, 12, 1, 0.9, 7);
    println!(
        "author-paper graph: {} authors, {} papers, {} authorship edges",
        graph.num_u(),
        graph.num_v(),
        graph.num_edges()
    );

    let decomposition = tip_decompose(&graph, Side::U, &Config::default());
    let tips = &decomposition.tip;
    let theta_max = decomposition.theta_max();
    println!("theta_max = {theta_max}");

    // Walk down the hierarchy: at each level the k-tips are the research
    // groups at that cohesion threshold; lowering k merges them.
    let view = graph.view(Side::U);
    let levels = [
        theta_max,
        theta_max / 4,
        theta_max / 16,
        1.max(theta_max / 64),
    ];
    let mut previous_groups = usize::MAX;
    for &k in &levels {
        let groups = hierarchy::ktip_components(view, tips, k);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        println!(
            "k = {k:>8}: {} group(s), sizes {:?}",
            groups.len(),
            &sizes[..sizes.len().min(10)]
        );
        // Hierarchy property: every k-tip is inside some k'-tip for k' < k,
        // so total covered vertices can only grow as k decreases.
        let covered: usize = sizes.iter().sum();
        assert!(
            previous_groups == usize::MAX || covered >= previous_groups,
            "hierarchy must be nested"
        );
        previous_groups = covered;
    }

    // The densest group: the core of the strongest lab.
    let core = hierarchy::ktip_components(view, tips, theta_max);
    let core_sizes: Vec<usize> = core.iter().map(|c| c.len()).collect();
    println!(
        "densest tip(s) at theta_max: {} component(s) of sizes {:?}",
        core.len(),
        core_sizes
    );
    assert!(!core.is_empty());

    // Verify Definition 1's support condition on a mid-level tip.
    let k = theta_max / 4;
    assert_eq!(
        hierarchy::verify_ktip_supports(view, tips, k),
        None,
        "every member of a k-tip participates in >= k butterflies"
    );
    println!("k-tip support condition verified at k = {k}");
}
